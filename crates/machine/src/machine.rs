//! The machine: processors + memory system + coordinator.
//!
//! ## Execution model
//!
//! Each simulated processor is a **resumable state machine** (a
//! [`Program`]): the coordinator polls it, receives either a timestamped
//! access request or a completion report, and services requests in
//! **global virtual-time order** — it only ever processes the
//! outstanding request with the smallest timestamp (ties broken by
//! processor id), so a run is fully deterministic for a given
//! configuration and seed.
//!
//! One host thread drives every processor of the machine (the **event
//! core**): delivering a reply *is* resuming the program — zero
//! channels, zero syscalls, zero context switches per access. Machine
//! size is bounded only by memory, not host thread limits.
//!
//! Spin loops ([`Cpu::spin_until`]) and accesses blocked on an atomic
//! sub-page park on a per-sub-page watch list and are re-issued — as
//! fully costed reads — whenever the memory system reports a visibility
//! event on that sub-page. This is semantically identical to a tight
//! polling loop (the woken read pays invalidation-refetch or snarf-refill
//! costs exactly as the protocol dictates) at O(updates) instead of
//! O(poll iterations) simulation cost.

use std::cell::RefCell;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::marker::PhantomData;
use std::sync::Arc;

use ksr_core::time::Cycles;
use ksr_core::trace::{TraceEvent, Tracer};
use ksr_core::{Error, FxHashMap, Result};
use ksr_mem::{MemOp, MemorySystem, Outcome, PerfMon};
use ksr_net::FabricStats;

use crate::config::MachineConfig;
use crate::cpu::{AccessOp, Cpu, Reply};
use crate::heap::Heap;
use crate::program::{Program, Step};
use crate::report::RunReport;
use crate::schedule::ScheduleOracle;
use crate::snapshot::PerfSnapshot;

/// A hook invoked on every freshly built [`Machine`] (see
/// [`ObserverScope`]).
pub type MachineObserver = dyn Fn(&mut Machine) + Send + Sync;

thread_local! {
    /// Stack of scoped observers for the *current thread*. Deliberately
    /// thread-local rather than process-global: concurrent jobs each
    /// install their own observer and must never see machines built by
    /// another job's thread.
    static SCOPED_OBSERVERS: RefCell<Vec<Arc<MachineObserver>>> =
        const { RefCell::new(Vec::new()) };
}

/// Scoped, stacked registration of a hook invoked on every [`Machine`]
/// built **on the current thread** while the scope is alive.
/// Verification harnesses use this to attach checking sinks to machines
/// built deep inside experiment code they do not control; the hook runs
/// before the machine executes anything, so an attached sink observes
/// the complete event stream.
///
/// Scopes nest: the innermost (most recently installed) observer wins.
/// Dropping the scope uninstalls its observer. The handle is
/// deliberately `!Send` — registration is per-thread, and moving the
/// guard across threads would silently uninstall on the wrong stack.
#[must_use = "the observer is uninstalled when the scope is dropped"]
#[derive(Debug)]
pub struct ObserverScope {
    _not_send: PhantomData<*const ()>,
}

impl ObserverScope {
    /// Push `observer` onto the current thread's observer stack.
    pub fn install(observer: Arc<MachineObserver>) -> Self {
        SCOPED_OBSERVERS.with(|stack| stack.borrow_mut().push(observer));
        Self {
            _not_send: PhantomData,
        }
    }
}

impl Drop for ObserverScope {
    fn drop(&mut self) {
        SCOPED_OBSERVERS.with(|stack| {
            stack.borrow_mut().pop();
        });
    }
}

/// A simulated multiprocessor.
pub struct Machine {
    cfg: MachineConfig,
    mem: MemorySystem,
    heap: Heap,
    epoch: Cycles,
    tracer: Tracer,
    oracle: Option<Box<dyn ScheduleOracle>>,
}

impl std::fmt::Debug for Machine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Machine")
            .field("cells", &self.cfg.cells)
            .field("epoch", &self.epoch)
            .field("oracle", &self.oracle.is_some())
            .finish_non_exhaustive()
    }
}

impl Machine {
    /// Build a machine from a validated configuration.
    pub fn new(cfg: MachineConfig) -> Result<Self> {
        cfg.validate()?;
        let fabric = cfg.build_fabric()?;
        let mem = MemorySystem::with_options(
            cfg.geometry,
            cfg.timing,
            fabric,
            cfg.cells,
            cfg.seed,
            cfg.protocol,
        )?;
        let mut machine = Self {
            cfg,
            mem,
            heap: Heap::new(),
            epoch: 0,
            tracer: Tracer::disabled(),
            oracle: None,
        };
        // Clone the innermost hook out before invoking it (the borrow
        // must end first) so a hook that builds another machine
        // re-enters the thread-local stack cleanly.
        let observer = SCOPED_OBSERVERS.with(|stack| stack.borrow().last().cloned());
        if let Some(observer) = observer {
            observer(&mut machine);
        }
        Ok(machine)
    }

    /// Attach a tracer to every instrumented layer of this machine: the
    /// interconnect (slot grants), the memory system (coherence
    /// transitions, snarfs, invalidations, atomic rejections), the
    /// coordinator (lock/flag handoffs), and the processors (barrier
    /// episodes). Sinks observe only — cycle counts are identical with
    /// tracing on or off.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.mem.set_tracer(tracer.clone());
        self.tracer = tracer;
    }

    /// Install a [`ScheduleOracle`]: the coordinator consults it whenever
    /// several processors' requests tie at the minimal virtual time,
    /// instead of defaulting to ascending proc-id order. Used by the
    /// small-scope schedule explorer (`ksr_verify::explore`) to enumerate
    /// interleavings; measurement runs never install one.
    pub fn set_schedule_oracle(&mut self, oracle: Box<dyn ScheduleOracle>) {
        self.oracle = Some(oracle);
    }

    /// Remove any installed schedule oracle, restoring the default
    /// deterministic `(time, proc id)` order.
    pub fn clear_schedule_oracle(&mut self) {
        self.oracle = None;
    }

    /// The paper's 32-cell KSR-1.
    pub fn ksr1(seed: u64) -> Result<Self> {
        Self::new(MachineConfig::ksr1(seed))
    }

    /// KSR-1 with caches scaled down by `factor`.
    pub fn ksr1_scaled(seed: u64, factor: u64) -> Result<Self> {
        Self::new(MachineConfig::ksr1_scaled(seed, factor))
    }

    /// The 64-cell KSR-2.
    pub fn ksr2(seed: u64) -> Result<Self> {
        Self::new(MachineConfig::ksr2(seed))
    }

    /// Sequent Symmetry-style bus machine.
    pub fn symmetry(cells: usize, seed: u64) -> Result<Self> {
        Self::new(MachineConfig::symmetry(cells, seed))
    }

    /// BBN Butterfly-style MIN machine.
    pub fn butterfly(cells: usize, seed: u64) -> Result<Self> {
        Self::new(MachineConfig::butterfly(cells, seed))
    }

    /// The machine configuration.
    #[must_use]
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// The memory system (for perfmon and directory inspection).
    #[must_use]
    pub fn mem(&self) -> &MemorySystem {
        &self.mem
    }

    /// One cell's performance monitor.
    #[must_use]
    pub fn perfmon(&self, cell: usize) -> &PerfMon {
        self.mem.perfmon(cell)
    }

    /// Machine-wide performance-monitor totals.
    #[must_use]
    pub fn perfmon_total(&self) -> PerfMon {
        self.mem.perfmon_total()
    }

    /// Interconnect counters.
    #[must_use]
    pub fn fabric_stats(&self) -> FabricStats {
        self.mem.fabric().stats()
    }

    /// Packets absorbed by in-network ARD combining (0 unless the
    /// topology is a ring hierarchy built with combining enabled).
    #[must_use]
    pub fn combined_packets(&self) -> u64 {
        self.mem.fabric().combined_packets()
    }

    /// Freeze every hardware counter at the current virtual time. Take
    /// one snapshot before and one after a phase and
    /// [`PerfSnapshot::delta_since`] attributes the counters to it —
    /// exactly how the paper's authors used the hardware monitor.
    #[must_use]
    pub fn perfmon_snapshot(&self) -> PerfSnapshot {
        PerfSnapshot {
            at: self.epoch,
            per_cell: (0..self.cfg.cells).map(|c| *self.mem.perfmon(c)).collect(),
            total: self.mem.perfmon_total(),
            fabric: self.mem.fabric().stats(),
        }
    }

    /// Allocate `bytes` of shared memory with the given alignment.
    pub fn alloc(&mut self, bytes: u64, align: u64) -> Result<u64> {
        self.heap.alloc(bytes, align)
    }

    /// Allocate `words` 8-byte words.
    pub fn alloc_words(&mut self, words: u64) -> Result<u64> {
        self.heap.alloc_words(words)
    }

    /// Allocate on a fresh 128 B sub-page (no false sharing).
    pub fn alloc_subpage(&mut self, bytes: u64) -> Result<u64> {
        self.heap.alloc_subpage_aligned(bytes)
    }

    /// Pre-install an address range in a cell's local cache (untimed
    /// setup; see [`MemorySystem::warm`]).
    pub fn warm(&mut self, cell: usize, addr: u64, len: u64) {
        self.mem.warm(cell, addr, len);
    }

    /// **Extension** (§4 wish list): turn sub-caching off for an address
    /// range — streaming data then bypasses the sub-cache instead of
    /// thrashing the hot working set out of it.
    pub fn set_uncached(&mut self, addr: u64, len: u64) {
        self.mem.set_uncached(addr, len);
    }

    /// Untimed data-plane store (experiment setup).
    ///
    /// # Errors
    /// [`Error`] when `addr` is outside the mapped data plane — the same
    /// typed error [`Machine::run`] reports, instead of a panic.
    pub fn poke_u64(&mut self, addr: u64, value: u64) -> Result<()> {
        self.mem.data_mut().write_u64(addr, value)
    }

    /// Untimed data-plane load (result verification).
    ///
    /// # Errors
    /// [`Error`] when `addr` is outside the mapped data plane.
    pub fn peek_u64(&mut self, addr: u64) -> Result<u64> {
        self.mem.data_mut().read_u64(addr)
    }

    /// Untimed `f64` store.
    ///
    /// # Errors
    /// [`Error`] when `addr` is outside the mapped data plane.
    pub fn poke_f64(&mut self, addr: u64, value: f64) -> Result<()> {
        self.mem.data_mut().write_f64(addr, value)
    }

    /// Untimed `f64` load.
    ///
    /// # Errors
    /// [`Error`] when `addr` is outside the mapped data plane.
    pub fn peek_f64(&mut self, addr: u64) -> Result<f64> {
        self.mem.data_mut().read_f64(addr)
    }

    /// Run one program per processor to completion; returns the run's
    /// timing report. May be called repeatedly — cache and directory state
    /// persist across runs (virtual time keeps increasing), which is how
    /// multi-phase experiments separate warm-up from measurement.
    ///
    /// # Errors
    /// None today — the event core spawns nothing that can fail. The
    /// `Result` stays so future host resources can report typed errors
    /// without touching every call site.
    ///
    /// # Panics
    /// Re-raises a simulated program's own panic as the run's root
    /// cause, and panics on simulation deadlock (every live processor
    /// parked on a sub-page no one is going to touch) — always a bug in
    /// the simulated program.
    pub fn run(&mut self, mut programs: Vec<Box<dyn Program + '_>>) -> Result<RunReport> {
        let n = programs.len();
        assert!(n >= 1, "need at least one program");
        assert!(
            n <= self.cfg.cells,
            "{n} programs exceed the machine's {} cells",
            self.cfg.cells
        );
        let start = self.epoch;
        let cpus = self.build_cpus(n, start);
        let (proc_end, proc_flops) = coordinate_event(
            &mut self.mem,
            &self.tracer,
            &mut programs,
            cpus,
            self.oracle.as_deref_mut(),
        );
        let finished_at = proc_end.iter().copied().max().unwrap_or(start);
        self.epoch = finished_at;
        Ok(RunReport {
            started_at: start,
            finished_at,
            clock_hz: self.cfg.clock_hz,
            proc_end,
            proc_flops,
        })
    }

    fn build_cpus(&self, n: usize, start: Cycles) -> Vec<Cpu> {
        (0..n)
            .map(|p| {
                Cpu::new(
                    p,
                    n,
                    start,
                    self.cfg.clock_hz,
                    self.cfg.flops_per_cycle,
                    self.cfg.interrupts,
                    self.cfg.native_fetch_op,
                    self.tracer.clone(),
                )
            })
            .collect()
    }
}

/// Outcome of servicing one access request against the memory system.
enum Serviced {
    /// The access completed; resume the program with this reply.
    Reply(Reply),
    /// The access blocked: park the processor on `subpage` (watching for
    /// visibility events) and retry `op` on wake-up.
    Park {
        subpage: u64,
        at: Cycles,
        op: AccessOp,
    },
}

/// Diagnose a simulated program touching an unmapped data-plane address:
/// a panic naming the processor, operation, address, and cycle — the
/// program's own bug, reported like any other program panic (the run's
/// root cause), never a bare `expect` poisoning the coordinator.
fn data_fault(proc: usize, what: &str, addr: u64, at: Cycles, err: &Error) -> ! {
    panic!(
        "simulated program fault: processor {proc} {what} at unmapped address \
         {addr:#x} (cycle {at}): {err}"
    )
}

/// Service one access request in virtual-time order — the single
/// request-processing path of the coordinator.
fn service(mem: &mut MemorySystem, tracer: &Tracer, p: usize, t: Cycles, op: AccessOp) -> Serviced {
    match op {
        AccessOp::Read { addr } => match mem.access(p, addr, MemOp::Read, t) {
            Outcome::Done { done_at } => {
                let value = mem
                    .data_mut()
                    .read_u64(addr)
                    .unwrap_or_else(|e| data_fault(p, "read", addr, t, &e));
                tracer.emit_with(|| TraceEvent::DataRead {
                    at: done_at,
                    cell: p,
                    addr,
                });
                Serviced::Reply(Reply::Value { value, at: done_at })
            }
            Outcome::BlockedOnAtomic { subpage } => Serviced::Park {
                subpage,
                at: t,
                op: AccessOp::Read { addr },
            },
            Outcome::AtomicFailed { .. } => unreachable!("reads cannot fail atomically"),
        },
        AccessOp::Write { addr, value } => match mem.access(p, addr, MemOp::Write, t) {
            Outcome::Done { done_at } => {
                mem.data_mut()
                    .write_u64(addr, value)
                    .unwrap_or_else(|e| data_fault(p, "write", addr, t, &e));
                tracer.emit_with(|| TraceEvent::DataWrite {
                    at: done_at,
                    cell: p,
                    addr,
                });
                Serviced::Reply(Reply::Unit { at: done_at })
            }
            Outcome::BlockedOnAtomic { subpage } => Serviced::Park {
                subpage,
                at: t,
                op: AccessOp::Write { addr, value },
            },
            Outcome::AtomicFailed { .. } => unreachable!("writes cannot fail atomically"),
        },
        AccessOp::GetSubPage { addr } => match mem.access(p, addr, MemOp::GetSubPage, t) {
            Outcome::Done { done_at } => {
                tracer.emit_with(|| TraceEvent::SyncAcquire {
                    at: done_at,
                    cell: p,
                    subpage: ksr_mem::subpage_of(addr),
                    rmw: false,
                });
                Serviced::Reply(Reply::Flag {
                    ok: true,
                    at: done_at,
                })
            }
            Outcome::AtomicFailed { done_at } => Serviced::Reply(Reply::Flag {
                ok: false,
                at: done_at,
            }),
            Outcome::BlockedOnAtomic { .. } => {
                unreachable!("get_sub_page reports failure, not blockage")
            }
        },
        AccessOp::FetchAdd { addr, delta } => match mem.access(p, addr, MemOp::AtomicRmw, t) {
            Outcome::Done { done_at } => {
                let old = mem
                    .data_mut()
                    .read_u64(addr)
                    .unwrap_or_else(|e| data_fault(p, "fetch_add (read)", addr, t, &e));
                mem.data_mut()
                    .write_u64(addr, old.wrapping_add(delta))
                    .unwrap_or_else(|e| data_fault(p, "fetch_add (write)", addr, t, &e));
                // A native RMW is one indivisible acquire+release on
                // its sub-page: race detectors get a synchronization
                // edge without any `Atomic` directory state existing.
                let sp = ksr_mem::subpage_of(addr);
                tracer.emit_with(|| TraceEvent::SyncAcquire {
                    at: done_at,
                    cell: p,
                    subpage: sp,
                    rmw: true,
                });
                tracer.emit_with(|| TraceEvent::SyncRelease {
                    at: done_at,
                    cell: p,
                    subpage: sp,
                    rmw: true,
                });
                Serviced::Reply(Reply::Value {
                    value: old,
                    at: done_at,
                })
            }
            Outcome::BlockedOnAtomic { subpage } => Serviced::Park {
                subpage,
                at: t,
                op: AccessOp::FetchAdd { addr, delta },
            },
            Outcome::AtomicFailed { .. } => unreachable!("RMW cannot fail atomically"),
        },
        AccessOp::ReleaseSubPage { addr } => {
            // Stamped at issue time, before the memory system applies
            // the transition: the holder must still be `Atomic` here,
            // which is exactly what a checking sink verifies.
            tracer.emit_with(|| TraceEvent::SyncRelease {
                at: t,
                cell: p,
                subpage: ksr_mem::subpage_of(addr),
                rmw: false,
            });
            let done_at = mem.access(p, addr, MemOp::ReleaseSubPage, t).done_at();
            Serviced::Reply(Reply::Unit { at: done_at })
        }
        AccessOp::Prefetch { addr, exclusive } => {
            let done_at = mem
                .access(p, addr, MemOp::Prefetch { exclusive }, t)
                .done_at();
            Serviced::Reply(Reply::Unit { at: done_at })
        }
        AccessOp::Poststore { addr } => {
            let done_at = mem.access(p, addr, MemOp::Poststore, t).done_at();
            Serviced::Reply(Reply::Unit { at: done_at })
        }
        AccessOp::SubcachePrefetch { addr } => {
            let done_at = mem.access(p, addr, MemOp::SubcachePrefetch, t).done_at();
            Serviced::Reply(Reply::Unit { at: done_at })
        }
        AccessOp::Spin { addr, mut pred } => match mem.access(p, addr, MemOp::Read, t) {
            Outcome::Done { done_at } => {
                let value = mem
                    .data_mut()
                    .read_u64(addr)
                    .unwrap_or_else(|e| data_fault(p, "spin read", addr, t, &e));
                if pred(value) {
                    tracer.emit_with(|| TraceEvent::SpinRead {
                        at: done_at,
                        cell: p,
                        addr,
                    });
                    Serviced::Reply(Reply::Value { value, at: done_at })
                } else {
                    Serviced::Park {
                        subpage: ksr_mem::subpage_of(addr),
                        at: done_at,
                        op: AccessOp::Spin { addr, pred },
                    }
                }
            }
            Outcome::BlockedOnAtomic { subpage } => Serviced::Park {
                subpage,
                at: t,
                op: AccessOp::Spin { addr, pred },
            },
            Outcome::AtomicFailed { .. } => unreachable!("reads cannot fail atomically"),
        },
    }
}

/// Min-queue of runnable processors keyed by (virtual time, proc id),
/// with a fast path for the common single-runnable case (n == 1, or
/// everyone else parked/done): the sole ready entry is held in `direct`
/// and never touches the heap. Invariant: when `direct` is `Some`, the
/// heap is empty — so `direct` is trivially the global minimum.
#[derive(Default)]
struct ReadyQueue {
    direct: Option<(Cycles, usize)>,
    heap: BinaryHeap<Reverse<(Cycles, usize)>>,
}

impl ReadyQueue {
    fn push(&mut self, at: Cycles, p: usize) {
        if self.direct.is_none() && self.heap.is_empty() {
            self.direct = Some((at, p));
        } else {
            if let Some(d) = self.direct.take() {
                self.heap.push(Reverse(d));
            }
            self.heap.push(Reverse((at, p)));
        }
    }

    fn pop(&mut self) -> Option<(Cycles, usize)> {
        self.direct
            .take()
            .or_else(|| self.heap.pop().map(|Reverse(x)| x))
    }

    /// Pop the next runnable processor, letting `oracle` (when installed)
    /// resolve minimal-timestamp ties instead of the default ascending
    /// proc-id order. The `direct` fast path is by construction the sole
    /// ready entry, so it never constitutes a choice point; with no
    /// oracle this is exactly [`ReadyQueue::pop`].
    fn pop_with(
        &mut self,
        oracle: Option<&mut (dyn ScheduleOracle + '_)>,
    ) -> Option<(Cycles, usize)> {
        let Some(oracle) = oracle else {
            return self.pop();
        };
        if let Some(d) = self.direct.take() {
            return Some(d);
        }
        let Reverse((t, first)) = self.heap.pop()?;
        if self.heap.peek().is_none_or(|Reverse((t2, _))| *t2 != t) {
            return Some((t, first));
        }
        // Two or more requests share the minimal timestamp: collect the
        // whole tie (heap pops ascend by (t, p), so `tied` is in
        // ascending proc-id order), ask the oracle, re-queue the rest.
        let mut tied = vec![first];
        while let Some(&Reverse((t2, p))) = self.heap.peek() {
            if t2 != t {
                break;
            }
            self.heap.pop();
            tied.push(p);
        }
        let chosen = tied.swap_remove(oracle.pick(t, &tied).min(tied.len() - 1));
        for p in tied {
            self.heap.push(Reverse((t, p)));
        }
        Some((t, chosen))
    }
}

/// Panic with the deadlock diagnosis: every live processor is parked on
/// a sub-page nobody is going to touch. Names each waiter.
fn deadlock_panic(live: usize, parked: &FxHashMap<u64, Vec<(usize, Cycles)>>) -> ! {
    let mut waiters: Vec<(usize, u64, Cycles)> = parked
        .iter()
        .flat_map(|(&sp, v)| v.iter().map(move |&(proc, at)| (proc, sp, at)))
        .collect();
    waiters.sort_unstable();
    panic!(
        "simulation deadlock: {live} processor(s) parked with no pending \
         writer; waiters as (proc, sub-page, parked_at): {waiters:?}"
    );
}

/// The event-driven coordinator: all processors of the machine driven by
/// the calling thread, strict smallest-timestamp-first. Delivering a
/// reply is a direct `resume` call on the program's state machine, so an
/// entire run makes **zero** syscalls for coordination. A program panic
/// unwinds straight through this loop with its original payload — it is
/// already on the coordinator's thread.
fn coordinate_event(
    mem: &mut MemorySystem,
    tracer: &Tracer,
    programs: &mut [Box<dyn Program + '_>],
    cpus: Vec<Cpu>,
    mut oracle: Option<&mut (dyn ScheduleOracle + '_)>,
) -> (Vec<Cycles>, Vec<u64>) {
    let n = programs.len();
    // Op yielded by each suspended processor, serviced when its
    // timestamp is globally smallest.
    let mut pending: Vec<Option<AccessOp>> = (0..n).map(|_| None).collect();
    let mut ready = ReadyQueue::default();
    // sub-page -> parked (proc, parked_at)
    let mut parked: FxHashMap<u64, Vec<(usize, Cycles)>> = FxHashMap::default();
    // Reused across iterations so draining visibility events allocates
    // only until the buffer reaches its high-water mark.
    let mut events = Vec::new();
    let mut done = 0usize;
    let mut end_at = vec![0; n];
    let mut flops = vec![0; n];

    macro_rules! on_step {
        ($p:expr, $step:expr) => {{
            match $step {
                Step::Yield { at, op } => {
                    pending[$p] = Some(op);
                    ready.push(at, $p);
                }
                Step::Done { at, flops: f } => {
                    done += 1;
                    end_at[$p] = at;
                    flops[$p] = f;
                }
            }
        }};
    }

    for (p, (prog, cpu)) in programs.iter_mut().zip(cpus).enumerate() {
        on_step!(p, prog.start(cpu));
    }

    while done < n {
        let Some((t, p)) = ready.pop_with(oracle.as_deref_mut()) else {
            deadlock_panic(n - done, &parked);
        };
        let op = pending[p]
            .take()
            .expect("scheduled processor has a request");

        match service(mem, tracer, p, t, op) {
            Serviced::Reply(reply) => on_step!(p, programs[p].resume(reply)),
            Serviced::Park { subpage, at, op } => {
                mem.watch(subpage);
                parked.entry(subpage).or_default().push((p, at));
                pending[p] = Some(op);
            }
        }

        // Visibility events wake parked processors for a costed retry.
        mem.drain_events_into(&mut events);
        for ev in events.drain(..) {
            if let Some(waiters) = parked.remove(&ev.subpage) {
                for (proc, parked_at) in waiters {
                    mem.unwatch(ev.subpage);
                    let wake_at = parked_at.max(ev.at);
                    tracer.emit_with(|| TraceEvent::LockHandoff {
                        at: wake_at,
                        cell: proc,
                        subpage: ev.subpage,
                    });
                    ready.push(wake_at, proc);
                }
            }
        }
    }
    (end_at, flops)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::program;

    #[test]
    fn single_program_runs_and_reports() {
        let mut m = Machine::ksr1(1).unwrap();
        let a = m.alloc_words(8).unwrap();
        let report = m
            .run(vec![program(move |mut cpu| async move {
                cpu.write_u64(a, 7).await;
                cpu.compute(100);
                let v = cpu.read_u64(a).await;
                assert_eq!(v, 7);
            })])
            .expect("run");
        assert!(report.duration_cycles() > 100);
        assert_eq!(m.peek_u64(a).unwrap(), 7);
    }

    #[test]
    fn determinism_across_runs() {
        let run_once = || {
            let mut m = Machine::ksr1(99).unwrap();
            let a = m.alloc_subpage(8).unwrap();
            let r = m
                .run(
                    (0..8)
                        .map(|_| {
                            program(move |mut cpu| async move {
                                for _ in 0..20 {
                                    cpu.acquire_sub_page(a).await;
                                    let v = cpu.read_u64(a).await;
                                    cpu.write_u64(a, v + 1).await;
                                    cpu.release_sub_page(a).await;
                                    cpu.compute(50);
                                }
                            })
                        })
                        .collect(),
                )
                .expect("run");
            (r.duration_cycles(), r.proc_end.clone())
        };
        assert_eq!(run_once(), run_once());
    }

    #[test]
    fn atomic_counter_is_exact_under_contention() {
        let mut m = Machine::ksr1(5).unwrap();
        let a = m.alloc_subpage(8).unwrap();
        let procs = 16;
        let iters = 25;
        m.run(
            (0..procs)
                .map(|_| {
                    program(move |mut cpu| async move {
                        for _ in 0..iters {
                            cpu.acquire_sub_page(a).await;
                            let v = cpu.read_u64(a).await;
                            cpu.write_u64(a, v + 1).await;
                            cpu.release_sub_page(a).await;
                        }
                    })
                })
                .collect(),
        )
        .expect("run");
        assert_eq!(m.peek_u64(a).unwrap(), (procs * iters) as u64);
    }

    #[test]
    fn spin_until_observes_writer() {
        let mut m = Machine::ksr1(3).unwrap();
        let flag = m.alloc_subpage(8).unwrap();
        let data = m.alloc_subpage(8).unwrap();
        let r = m
            .run(vec![
                program(move |mut cpu| async move {
                    cpu.compute(5_000);
                    cpu.write_u64(data, 42).await;
                    cpu.write_u64(flag, 1).await;
                }),
                program(move |mut cpu| async move {
                    cpu.spin_until_eq(flag, 1).await;
                    let v = cpu.read_u64(data).await;
                    assert_eq!(v, 42, "flag ordering must publish data");
                }),
            ])
            .expect("run");
        // The spinner cannot have finished before the writer's flag write.
        assert!(r.proc_end[1] > 5_000);
    }

    #[test]
    fn blocked_access_waits_for_release() {
        let mut m = Machine::ksr1(7).unwrap();
        let a = m.alloc_subpage(8).unwrap();
        let r = m
            .run(vec![
                program(move |mut cpu| async move {
                    cpu.acquire_sub_page(a).await;
                    cpu.write_u64(a, 9).await;
                    cpu.compute(10_000);
                    cpu.release_sub_page(a).await;
                }),
                program(move |mut cpu| async move {
                    cpu.compute(500); // let proc 0 take the lock first
                    let v = cpu.read_u64(a).await; // blocks until release
                    assert_eq!(v, 9);
                }),
            ])
            .expect("run");
        assert!(
            r.proc_end[1] > 10_000,
            "reader must stall past the critical section: {}",
            r.proc_end[1]
        );
    }

    #[test]
    fn per_proc_flops_accounted() {
        let mut m = Machine::ksr1(1).unwrap();
        let r = m
            .run(vec![
                program(|mut cpu| async move { cpu.flops(1000) }),
                program(|mut cpu| async move { cpu.flops(500) }),
            ])
            .expect("run");
        assert_eq!(r.proc_flops, vec![1000, 500]);
        assert_eq!(r.total_flops(), 1500);
        // 1000 flops at 2/cycle = 500 cycles.
        assert_eq!(r.proc_end[0], 500);
    }

    #[test]
    fn consecutive_runs_share_machine_state() {
        let mut m = Machine::ksr1(1).unwrap();
        let a = m.alloc_words(1).unwrap();
        let r1 = m
            .run(vec![program(move |mut cpu| async move {
                cpu.write_u64(a, 5).await;
            })])
            .expect("run");
        // Second run starts where the first ended, and the data persists.
        let r2 = m
            .run(vec![program(move |mut cpu| async move {
                assert_eq!(cpu.read_u64(a).await, 5);
            })])
            .expect("run");
        assert!(r2.started_at >= r1.finished_at);
        // Warm cache: that read is a cheap hit now.
        assert!(r2.duration_cycles() <= 30, "{}", r2.duration_cycles());
    }

    #[test]
    #[should_panic(expected = "deadlock")]
    fn deadlock_is_detected() {
        let mut m = Machine::ksr1(1).unwrap();
        let a = m.alloc_subpage(8).unwrap();
        let _ = m.run(vec![program(move |mut cpu| async move {
            cpu.spin_until_eq(a, 1).await; // nobody will ever write this
        })]);
    }

    #[test]
    fn deadlock_report_names_each_waiter() {
        let payload = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut m = Machine::ksr1(1).unwrap();
            let a = m.alloc_subpage(8).unwrap();
            let _ = m.run(vec![
                program(move |mut cpu| async move {
                    cpu.spin_until_eq(a, 1).await; // nobody will ever write this
                }),
                program(move |mut cpu| async move {
                    cpu.compute(10);
                    cpu.spin_until_eq(a, 2).await; // nor this
                }),
            ]);
        }))
        .expect_err("two parked processors with no writer must deadlock");
        let msg = panic_message(&*payload);
        // The diagnostic must identify each waiter as a
        // (proc, sub-page, parked_at) triple, not just raw sub-page keys.
        assert!(msg.contains("(proc, sub-page, parked_at)"), "got: {msg}");
        assert!(msg.contains("(0, "), "waiter for proc 0 missing: {msg}");
        assert!(msg.contains("(1, "), "waiter for proc 1 missing: {msg}");
    }

    fn panic_program_set(m: &mut Machine) -> Vec<Box<dyn Program>> {
        let flag = m.alloc_subpage(8).unwrap();
        vec![
            program(move |mut cpu| async move {
                cpu.compute(10);
                let v = cpu.read_u64(flag).await;
                assert_eq!(v, 99, "the simulated program's own diagnosis");
            }),
            // Parked forever on a flag the panicking peer was about to
            // write: without abort propagation this peer dies with a
            // misleading "simulation deadlock" panic instead.
            program(move |mut cpu| async move {
                cpu.spin_until_eq(flag, 1).await;
            }),
        ]
    }

    #[test]
    fn program_panic_propagates_its_own_message() {
        let payload = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut m = Machine::ksr1(7).unwrap();
            let programs = panic_program_set(&mut m);
            let _ = m.run(programs);
        }))
        .expect_err("a panicking program must fail the run");
        let msg = panic_message(&*payload);
        assert!(
            msg.contains("the simulated program's own diagnosis"),
            "expected the program's assertion to surface, got: {msg}"
        );
        assert!(
            !msg.contains("deadlock"),
            "the program's panic must not be masked as a deadlock: {msg}"
        );
    }

    #[test]
    fn poke_and_peek_report_unmapped_addresses() {
        let mut m = Machine::ksr1(1).unwrap();
        let bad = u64::MAX - 1024;
        assert!(m.poke_u64(bad, 1).is_err(), "poke past the heap must err");
        assert!(m.peek_u64(bad).is_err(), "peek past the heap must err");
        assert!(m.poke_f64(bad, 1.0).is_err());
        assert!(m.peek_f64(bad).is_err());
        // A valid address still round-trips.
        let a = m.alloc_words(1).unwrap();
        m.poke_u64(a, 77).unwrap();
        assert_eq!(m.peek_u64(a).unwrap(), 77);
    }

    #[test]
    fn in_run_fault_names_processor_and_address() {
        let payload = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut m = Machine::ksr1(1).unwrap();
            let _ = m.run(vec![program(move |mut cpu| async move {
                // Unmapped: far past anything allocated.
                cpu.write_u64(u64::MAX - 4096, 1).await;
            })]);
        }))
        .expect_err("an unmapped in-run access must fail the run");
        let msg = panic_message(&*payload);
        assert!(
            msg.contains("processor 0") && msg.contains("write"),
            "fault diagnostic must name proc and op: {msg}"
        );
    }

    fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
        payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_else(|| {
                payload
                    .downcast_ref::<&str>()
                    .map_or_else(|| "<non-string payload>".to_string(), |s| (*s).to_string())
            })
    }

    #[test]
    fn timer_interrupts_stretch_compute() {
        use crate::config::InterruptConfig;
        let cfg = MachineConfig::ksr1(1).with_interrupts(InterruptConfig {
            quantum_cycles: 1_000,
            duration_cycles: 100,
        });
        let mut m = Machine::new(cfg).unwrap();
        let r = m
            .run(vec![program(|mut cpu| async move { cpu.compute(10_000) })])
            .expect("run");
        // ~10 interrupts of 100 cycles land inside 10k cycles of work.
        assert!(r.duration_cycles() >= 10_900, "{}", r.duration_cycles());
        assert!(r.duration_cycles() <= 11_200, "{}", r.duration_cycles());
    }

    #[test]
    fn many_procs_distinct_data_pipelines() {
        // 16 processors each hammering their own sub-page: total time must
        // be far below 16x a single processor's (parallelism is real).
        let mut m = Machine::ksr1(11).unwrap();
        let addrs: Vec<u64> = (0..16).map(|_| m.alloc_subpage(8).unwrap()).collect();
        let solo = {
            let mut m1 = Machine::ksr1(11).unwrap();
            let a1 = m1.alloc_subpage(8).unwrap();
            let r = m1
                .run(vec![program(move |mut cpu| async move {
                    for i in 0..200 {
                        cpu.write_u64(a1, i).await;
                    }
                })])
                .expect("run");
            r.duration_cycles()
        };
        let r = m
            .run(
                addrs
                    .iter()
                    .map(|&a| {
                        program(move |mut cpu| async move {
                            for i in 0..200 {
                                cpu.write_u64(a, i).await;
                            }
                        })
                    })
                    .collect(),
            )
            .expect("run");
        assert!(
            r.duration_cycles() < solo * 4,
            "16 procs on distinct data should not serialize: {} vs solo {solo}",
            r.duration_cycles()
        );
    }

    #[test]
    fn observer_scope_sees_machines_built_in_scope_only() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let seen = Arc::new(AtomicUsize::new(0));
        let seen2 = Arc::clone(&seen);
        {
            let _scope = ObserverScope::install(Arc::new(move |_m: &mut Machine| {
                seen2.fetch_add(1, Ordering::SeqCst);
            }));
            let _a = Machine::ksr1_scaled(1, 64).unwrap();
            let _b = Machine::ksr1_scaled(2, 64).unwrap();
        }
        // Scope dropped: further machines are unobserved.
        let _c = Machine::ksr1_scaled(3, 64).unwrap();
        assert_eq!(seen.load(std::sync::atomic::Ordering::SeqCst), 2);
    }

    #[test]
    fn observer_scopes_nest_innermost_wins() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let outer = Arc::new(AtomicUsize::new(0));
        let inner = Arc::new(AtomicUsize::new(0));
        let (o2, i2) = (Arc::clone(&outer), Arc::clone(&inner));
        let _outer_scope = ObserverScope::install(Arc::new(move |_m: &mut Machine| {
            o2.fetch_add(1, Ordering::SeqCst);
        }));
        {
            let _inner_scope = ObserverScope::install(Arc::new(move |_m: &mut Machine| {
                i2.fetch_add(1, Ordering::SeqCst);
            }));
            let _m = Machine::ksr1_scaled(4, 64).unwrap();
        }
        let _m = Machine::ksr1_scaled(5, 64).unwrap();
        assert_eq!(inner.load(Ordering::SeqCst), 1, "inner scope shadowed");
        assert_eq!(outer.load(Ordering::SeqCst), 1, "outer resumes after pop");
    }

    #[test]
    fn observers_are_thread_local() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let seen = Arc::new(AtomicUsize::new(0));
        let seen2 = Arc::clone(&seen);
        let _scope = ObserverScope::install(Arc::new(move |_m: &mut Machine| {
            seen2.fetch_add(1, Ordering::SeqCst);
        }));
        // A machine built on another thread must not trip this thread's
        // observer.
        std::thread::scope(|s| {
            s.spawn(|| {
                let _m = Machine::ksr1_scaled(6, 64).unwrap();
            });
        });
        assert_eq!(seen.load(Ordering::SeqCst), 0);
        let _m = Machine::ksr1_scaled(7, 64).unwrap();
        assert_eq!(seen.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn empty_prefix_oracle_reproduces_the_default_schedule() {
        use crate::schedule::ReplayOracle;
        let run = |oracle: bool| {
            let mut m = Machine::ksr1(99).unwrap();
            let a = m.alloc_subpage(8).unwrap();
            let trace = oracle.then(|| {
                let (o, trace) = ReplayOracle::with_trace(Vec::new());
                m.set_schedule_oracle(Box::new(o));
                trace
            });
            let r = m
                .run(
                    (0..4)
                        .map(|_| {
                            program(move |mut cpu| async move {
                                for _ in 0..10 {
                                    cpu.acquire_sub_page(a).await;
                                    let v = cpu.read_u64(a).await;
                                    cpu.write_u64(a, v + 1).await;
                                    cpu.release_sub_page(a).await;
                                }
                            })
                        })
                        .collect(),
                )
                .expect("run");
            (r.proc_end.clone(), trace)
        };
        let (baseline, _) = run(false);
        let (replayed, trace) = run(true);
        assert_eq!(baseline, replayed, "prefix [] must be the default order");
        let t = trace.unwrap();
        let t = t.lock().unwrap();
        assert!(
            !t.fanouts.is_empty(),
            "4 procs starting at cycle 0 must tie at least once"
        );
        assert!(t.decisions.iter().all(|&d| d == 0));
    }

    #[test]
    fn oracle_choice_changes_the_schedule() {
        // Two procs race a get_sub_page at t=0; whoever is serviced
        // first wins the sub-page, so flipping the first tie must be
        // observable in the final memory state.
        let run = |prefix: Vec<usize>| {
            let mut m = Machine::ksr1(3).unwrap();
            let g = m.alloc_subpage(8).unwrap();
            let winner = m.alloc_subpage(8).unwrap();
            let (o, _trace) = crate::schedule::ReplayOracle::with_trace(prefix);
            m.set_schedule_oracle(Box::new(o));
            m.run(
                (0..2)
                    .map(|p| {
                        program(move |mut cpu| async move {
                            if cpu.get_sub_page(g).await {
                                cpu.write_u64(winner, p as u64 + 1).await;
                                cpu.release_sub_page(g).await;
                            }
                        })
                    })
                    .collect(),
            )
            .expect("run");
            m.peek_u64(winner).unwrap()
        };
        assert_eq!(run(vec![0]), 1, "default order: proc 0 wins the tie");
        assert_eq!(run(vec![1]), 2, "flipped tie: proc 1 wins");
    }

    #[test]
    fn event_core_runs_machines_far_beyond_thread_limits() {
        // 256 processors on one host thread: impossible under the old
        // thread-per-processor core on constrained hosts, trivial now.
        let mut m = Machine::butterfly(256, 13).unwrap();
        let a = m.alloc_subpage(8).unwrap();
        let r = m
            .run(
                (0..256)
                    .map(|_| {
                        program(move |mut cpu| async move {
                            cpu.fetch_add(a, 1).await;
                        })
                    })
                    .collect(),
            )
            .expect("run");
        assert_eq!(m.peek_u64(a).unwrap(), 256);
        assert!(r.duration_cycles() > 0);
    }

    #[test]
    fn deep_ring_machine_runs_1024_cells() {
        // A three-level 1024-cell KSR ring tree via the Topology API:
        // every cell bumps its own counter, far-side cells paying
        // multi-level crossings to reach cell 0's leaf.
        let mut m = Machine::new(MachineConfig::ksr_ring(17, &[32, 8, 4])).unwrap();
        let a = m.alloc_subpage(8).unwrap();
        let r = m
            .run(
                (0..1024)
                    .map(|_| {
                        program(move |mut cpu| async move {
                            cpu.fetch_add(a, 1).await;
                        })
                    })
                    .collect(),
            )
            .expect("run");
        assert_eq!(m.peek_u64(a).unwrap(), 1024);
        assert!(r.duration_cycles() > 0);
    }
}

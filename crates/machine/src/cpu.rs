//! The processor handle simulated programs run against.
//!
//! A [`Cpu`] is owned by its program's future. Every shared-memory
//! operation *yields* an [`AccessOp`] to the machine coordinator (the
//! program future suspends at the `await` point) and resumes with the
//! coordinator's [`Reply`] once the access has been scheduled in global
//! virtual-time order; private computation advances the local clock
//! without suspension. This gives simulated programs a completely
//! ordinary imperative style — the CG inner loop looks like a loop, a
//! barrier looks like a function call with `.await` — while the
//! coordinator keeps the whole machine deterministic.
//!
//! The yield handshake is a per-processor [`Slot`]: the access future
//! deposits `(issue time, op)` and returns `Pending`; the event-loop
//! coordinator takes the request, deposits the reply, and polls again.
//! Coordinator and future live on the same thread (the event core is
//! single-threaded by construction), so the slot is a plain
//! `Rc<RefCell>` — no atomics, no locks, no rendezvous.

use std::cell::RefCell;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll};

use ksr_core::time::{Cycles, Hz};
use ksr_core::trace::{TraceEvent, Tracer};

use crate::config::InterruptConfig;

/// One shared-memory operation yielded by a program to the coordinator.
///
/// This is the entire vocabulary a resumable program can speak: each
/// [`Program::resume`](crate::program::Program::resume) either yields one
/// of these (with the issue timestamp) or reports completion.
pub enum AccessOp {
    /// Load a 64-bit word.
    Read {
        /// SVA address.
        addr: u64,
    },
    /// Store a 64-bit word.
    Write {
        /// SVA address.
        addr: u64,
        /// Value to store.
        value: u64,
    },
    /// One `get_sub_page` attempt.
    GetSubPage {
        /// Address within the target sub-page.
        addr: u64,
    },
    /// `release_sub_page`.
    ReleaseSubPage {
        /// Address within the target sub-page.
        addr: u64,
    },
    /// Native atomic fetch-and-add (Symmetry/Butterfly only).
    FetchAdd {
        /// SVA address.
        addr: u64,
        /// Addend (wrapping).
        delta: u64,
    },
    /// Non-blocking `prefetch`.
    Prefetch {
        /// Address within the target sub-page.
        addr: u64,
        /// Fetch in exclusive state.
        exclusive: bool,
    },
    /// `poststore`.
    Poststore {
        /// Address within the target sub-page.
        addr: u64,
    },
    /// §4-extension: local-cache → sub-cache prefetch.
    SubcachePrefetch {
        /// Address within the target sub-page.
        addr: u64,
    },
    /// Park until `pred` holds for the word at `addr` (fast-forwarded
    /// spin loop; each wake-up is a fully costed re-read).
    Spin {
        /// SVA address being spun on.
        addr: u64,
        /// Exit predicate over the loaded value.
        pred: Box<dyn FnMut(u64) -> bool>,
    },
}

impl std::fmt::Debug for AccessOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Read { addr } => f.debug_struct("Read").field("addr", addr).finish(),
            Self::Write { addr, value } => f
                .debug_struct("Write")
                .field("addr", addr)
                .field("value", value)
                .finish(),
            Self::GetSubPage { addr } => f.debug_struct("GetSubPage").field("addr", addr).finish(),
            Self::ReleaseSubPage { addr } => f
                .debug_struct("ReleaseSubPage")
                .field("addr", addr)
                .finish(),
            Self::FetchAdd { addr, delta } => f
                .debug_struct("FetchAdd")
                .field("addr", addr)
                .field("delta", delta)
                .finish(),
            Self::Prefetch { addr, exclusive } => f
                .debug_struct("Prefetch")
                .field("addr", addr)
                .field("exclusive", exclusive)
                .finish(),
            Self::Poststore { addr } => f.debug_struct("Poststore").field("addr", addr).finish(),
            Self::SubcachePrefetch { addr } => f
                .debug_struct("SubcachePrefetch")
                .field("addr", addr)
                .finish(),
            Self::Spin { addr, .. } => f
                .debug_struct("Spin")
                .field("addr", addr)
                .finish_non_exhaustive(),
        }
    }
}

impl AccessOp {
    /// Short operation name for diagnostics.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Self::Read { .. } => "read",
            Self::Write { .. } => "write",
            Self::GetSubPage { .. } => "get_sub_page",
            Self::ReleaseSubPage { .. } => "release_sub_page",
            Self::FetchAdd { .. } => "fetch_add",
            Self::Prefetch { .. } => "prefetch",
            Self::Poststore { .. } => "poststore",
            Self::SubcachePrefetch { .. } => "subcache_prefetch",
            Self::Spin { .. } => "spin",
        }
    }
}

/// Coordinator's answer to a yielded [`AccessOp`].
#[derive(Debug, Clone, Copy)]
pub enum Reply {
    /// A loaded value (reads, spins, fetch-and-add).
    Value {
        /// The loaded (or pre-update) value.
        value: u64,
        /// Completion time.
        at: Cycles,
    },
    /// Success flag (`get_sub_page`).
    Flag {
        /// Whether the attempt succeeded.
        ok: bool,
        /// Completion time.
        at: Cycles,
    },
    /// Plain completion.
    Unit {
        /// Completion time.
        at: Cycles,
    },
}

impl Reply {
    /// The virtual time the access completed.
    #[must_use]
    pub fn at(&self) -> Cycles {
        match self {
            Self::Value { at, .. } | Self::Flag { at, .. } | Self::Unit { at } => *at,
        }
    }
}

/// The per-processor yield cell shared by a program future and the
/// coordinator. Access strictly alternates (the coordinator never polls
/// without first depositing the awaited reply, and the future never
/// suspends without first depositing its request) and both sides live on
/// the coordinator's thread, so a `RefCell` borrow is never held across
/// the hand-off.
#[derive(Default)]
pub(crate) struct Slot {
    inner: RefCell<SlotInner>,
}

#[derive(Default)]
struct SlotInner {
    /// Deposited by the program future just before it suspends.
    request: Option<(Cycles, AccessOp)>,
    /// Deposited by the coordinator just before it polls.
    reply: Option<Reply>,
    /// Deposited by [`Cpu`]'s `Drop` when the program's future completes
    /// (the `Cpu` is owned by the future, so it drops exactly then):
    /// final local time and FLOP count.
    finished: Option<(Cycles, u64)>,
}

impl Slot {
    pub(crate) fn put_reply(&self, reply: Reply) {
        self.inner.borrow_mut().reply = Some(reply);
    }

    pub(crate) fn take_request(&self) -> Option<(Cycles, AccessOp)> {
        self.inner.borrow_mut().request.take()
    }

    pub(crate) fn take_finished(&self) -> Option<(Cycles, u64)> {
        self.inner.borrow_mut().finished.take()
    }
}

/// One simulated processor, handed (by value) to the async closure a
/// [`crate::program::Program`] is built from.
pub struct Cpu {
    id: usize,
    nprocs: usize,
    clock_hz: Hz,
    flops_per_cycle: u64,
    local: Cycles,
    flops: u64,
    interrupts: Option<(InterruptConfig, Cycles)>,
    native_fetch_op: bool,
    tracer: Tracer,
    slot: Rc<Slot>,
}

impl std::fmt::Debug for Cpu {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cpu")
            .field("id", &self.id)
            .field("nprocs", &self.nprocs)
            .field("local", &self.local)
            .field("flops", &self.flops)
            .finish_non_exhaustive()
    }
}

impl Drop for Cpu {
    fn drop(&mut self) {
        // The program future owns its Cpu, so this runs exactly when the
        // future completes (or is torn down mid-run after a peer's
        // failure): record the final clock and FLOP count for the
        // machine's run report.
        self.slot.inner.borrow_mut().finished = Some((self.local, self.flops));
    }
}

impl Cpu {
    #[allow(clippy::too_many_arguments)] // internal constructor mirroring MachineConfig fields
    pub(crate) fn new(
        id: usize,
        nprocs: usize,
        start: Cycles,
        clock_hz: Hz,
        flops_per_cycle: u64,
        interrupts: Option<InterruptConfig>,
        native_fetch_op: bool,
        tracer: Tracer,
    ) -> Self {
        // Unsynchronized timers: each processor's first tick lands at a
        // different phase derived from its id.
        let interrupts = interrupts.map(|cfg| {
            let phase = (id as u64 * 7919) % cfg.quantum_cycles;
            (cfg, start + phase + 1)
        });
        Self {
            id,
            nprocs,
            clock_hz,
            flops_per_cycle,
            local: start,
            flops: 0,
            interrupts,
            native_fetch_op,
            tracer,
            slot: Rc::new(Slot::default()),
        }
    }

    /// The yield cell this processor's accesses go through (cloned by the
    /// program wrapper so it can read requests after polling).
    pub(crate) fn slot(&self) -> Rc<Slot> {
        Rc::clone(&self.slot)
    }

    /// Record the completion of one barrier episode by this processor
    /// (called by the synchronization library; a no-op when the machine
    /// has no tracer attached).
    pub fn trace_barrier_episode(&self, episode: u64) {
        let (at, cell) = (self.local, self.id);
        self.tracer
            .emit_with(|| TraceEvent::BarrierEpisode { at, cell, episode });
    }

    /// This processor's index (0-based).
    #[must_use]
    pub fn id(&self) -> usize {
        self.id
    }

    /// Number of processors participating in this run.
    #[must_use]
    pub fn nprocs(&self) -> usize {
        self.nprocs
    }

    /// The local virtual clock, in cycles.
    #[must_use]
    pub fn now(&self) -> Cycles {
        self.local
    }

    /// Cell clock rate.
    #[must_use]
    pub fn clock_hz(&self) -> Hz {
        self.clock_hz
    }

    /// Perform `cycles` of private computation (loop overhead, address
    /// arithmetic, anything not touching shared memory). Timer interrupts,
    /// when enabled, land inside computation.
    pub fn compute(&mut self, cycles: Cycles) {
        let mut remaining = cycles;
        if let Some((cfg, next)) = &mut self.interrupts {
            while self.local + remaining >= *next {
                let to_interrupt = next.saturating_sub(self.local);
                remaining -= to_interrupt.min(remaining);
                self.local = *next + cfg.duration_cycles;
                *next += cfg.quantum_cycles;
            }
        }
        self.local += remaining;
    }

    /// Perform `n` floating-point operations at the pipelined peak rate
    /// (2 per cycle on the KSR-1 — 40 MFLOPS at 20 MHz).
    pub fn flops(&mut self, n: u64) {
        self.flops += n;
        self.compute(n.div_ceil(self.flops_per_cycle));
    }

    /// Yield `op` to the coordinator and suspend until it replies.
    async fn roundtrip(&mut self, op: AccessOp) -> Reply {
        let reply = YieldAccess {
            slot: &self.slot,
            request: Some((self.local, op)),
        }
        .await;
        self.local = reply.at();
        // Interrupts that would have fired during the stall are treated as
        // overlapped with it: skip them without extra charge.
        if let Some((cfg, next)) = &mut self.interrupts {
            while *next <= self.local {
                *next += cfg.quantum_cycles;
            }
        }
        reply
    }

    /// Load a 64-bit word from shared memory.
    pub async fn read_u64(&mut self, addr: u64) -> u64 {
        match self.roundtrip(AccessOp::Read { addr }).await {
            Reply::Value { value, .. } => value,
            _ => unreachable!("read must yield a value"),
        }
    }

    /// Store a 64-bit word to shared memory.
    pub async fn write_u64(&mut self, addr: u64, value: u64) {
        self.roundtrip(AccessOp::Write { addr, value }).await;
    }

    /// Load an `f64` from shared memory.
    pub async fn read_f64(&mut self, addr: u64) -> f64 {
        f64::from_bits(self.read_u64(addr).await)
    }

    /// Store an `f64` to shared memory.
    pub async fn write_f64(&mut self, addr: u64, value: f64) {
        self.write_u64(addr, value.to_bits()).await;
    }

    /// One `get_sub_page` attempt on the sub-page containing `addr`;
    /// `false` if another cell already holds it atomic.
    pub async fn get_sub_page(&mut self, addr: u64) -> bool {
        match self.roundtrip(AccessOp::GetSubPage { addr }).await {
            Reply::Flag { ok, .. } => ok,
            _ => unreachable!("get_sub_page must yield a flag"),
        }
    }

    /// Spin (in hardware fashion — each retry is a fresh ring request)
    /// until `get_sub_page` succeeds. This is exactly the "naive hardware
    /// exclusive lock" of §3.2.1.
    pub async fn acquire_sub_page(&mut self, addr: u64) {
        while !self.get_sub_page(addr).await {}
    }

    /// Release a sub-page held atomic.
    pub async fn release_sub_page(&mut self, addr: u64) {
        self.roundtrip(AccessOp::ReleaseSubPage { addr }).await;
    }

    /// Whether this machine has a native fetch-and-Φ instruction (the
    /// KSR-1 does not; the §3.2.3 comparison machines do).
    #[must_use]
    pub fn has_native_fetch_op(&self) -> bool {
        self.native_fetch_op
    }

    /// Architecture-appropriate atomic fetch-and-add: a single fabric
    /// transaction where the hardware offers one, otherwise the KSR-1
    /// synthesis from `get_sub_page` (§3.2.2). Returns the old value.
    pub async fn fetch_add(&mut self, addr: u64, delta: u64) -> u64 {
        if self.native_fetch_op {
            match self.roundtrip(AccessOp::FetchAdd { addr, delta }).await {
                Reply::Value { value, .. } => value,
                _ => unreachable!("fetch_add must yield the old value"),
            }
        } else {
            self.acquire_sub_page(addr).await;
            let old = self.read_u64(addr).await;
            self.write_u64(addr, old.wrapping_add(delta)).await;
            self.release_sub_page(addr).await;
            old
        }
    }

    /// Issue a non-blocking `prefetch` of the sub-page containing `addr`
    /// into the local cache.
    pub async fn prefetch(&mut self, addr: u64, exclusive: bool) {
        self.roundtrip(AccessOp::Prefetch { addr, exclusive }).await;
    }

    /// Issue a `poststore` of the sub-page containing `addr`.
    pub async fn poststore(&mut self, addr: u64) {
        self.roundtrip(AccessOp::Poststore { addr }).await;
    }

    /// **Extension** (§4 wish list): non-blocking prefetch of a locally
    /// resident sub-page from the local cache into the sub-cache —
    /// "given that there is roughly an order of magnitude difference
    /// between their access times".
    pub async fn prefetch_subcache(&mut self, addr: u64) {
        self.roundtrip(AccessOp::SubcachePrefetch { addr }).await;
    }

    /// Spin on the word at `addr` until `pred` holds; returns the value
    /// that satisfied it. Semantically identical to
    /// `loop { let v = read(addr); if pred(v) { break v } }` — every
    /// wake-up is a fully costed re-read — but fast-forwarded so the
    /// simulator spends O(updates), not O(spin iterations).
    pub async fn spin_until(&mut self, addr: u64, pred: impl FnMut(u64) -> bool + 'static) -> u64 {
        match self
            .roundtrip(AccessOp::Spin {
                addr,
                pred: Box::new(pred),
            })
            .await
        {
            Reply::Value { value, .. } => value,
            _ => unreachable!("spin must yield a value"),
        }
    }

    /// Convenience: spin until the word equals `target`.
    pub async fn spin_until_eq(&mut self, addr: u64, target: u64) {
        self.spin_until(addr, move |v| v == target).await;
    }
}

/// The suspension point: first poll deposits the request and returns
/// `Pending` (the program's driver then sees the yielded op); the next
/// poll — issued only after the driver has deposited the reply — resolves
/// to that reply.
struct YieldAccess<'a> {
    slot: &'a Slot,
    request: Option<(Cycles, AccessOp)>,
}

impl Future for YieldAccess<'_> {
    type Output = Reply;

    fn poll(self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<Reply> {
        let this = self.get_mut();
        let mut slot = this.slot.inner.borrow_mut();
        if let Some(req) = this.request.take() {
            slot.request = Some(req);
            return Poll::Pending;
        }
        let reply = slot
            .reply
            .take()
            .expect("program polled without a pending reply");
        Poll::Ready(reply)
    }
}

//! The processor handle simulated programs run against.
//!
//! A [`Cpu`] lives on its program's OS thread. Every shared-memory
//! operation sends a request to the machine coordinator and blocks until
//! the coordinator has scheduled it in global virtual-time order; private
//! computation advances the local clock without synchronization. This
//! gives simulated programs a completely ordinary imperative style — the
//! CG inner loop looks like a loop, a barrier looks like a function call —
//! while the coordinator keeps the whole machine deterministic.

use std::sync::mpsc::{Receiver, Sender};

use ksr_core::time::{Cycles, Hz};
use ksr_core::trace::{TraceEvent, Tracer};

use crate::config::InterruptConfig;

/// A request from a program thread to the coordinator.
pub(crate) enum Request {
    /// Load a 64-bit word.
    Read {
        /// SVA address.
        addr: u64,
    },
    /// Store a 64-bit word.
    Write {
        /// SVA address.
        addr: u64,
        /// Value to store.
        value: u64,
    },
    /// One `get_sub_page` attempt.
    GetSubPage {
        /// Address within the target sub-page.
        addr: u64,
    },
    /// `release_sub_page`.
    ReleaseSubPage {
        /// Address within the target sub-page.
        addr: u64,
    },
    /// Native atomic fetch-and-add (Symmetry/Butterfly only).
    FetchAdd {
        /// SVA address.
        addr: u64,
        /// Addend (wrapping).
        delta: u64,
    },
    /// Non-blocking `prefetch`.
    Prefetch {
        /// Address within the target sub-page.
        addr: u64,
        /// Fetch in exclusive state.
        exclusive: bool,
    },
    /// `poststore`.
    Poststore {
        /// Address within the target sub-page.
        addr: u64,
    },
    /// §4-extension: local-cache → sub-cache prefetch.
    SubcachePrefetch {
        /// Address within the target sub-page.
        addr: u64,
    },
    /// Park until `pred` holds for the word at `addr` (fast-forwarded
    /// spin loop; each wake-up is a fully costed re-read).
    Spin {
        /// SVA address being spun on.
        addr: u64,
        /// Exit predicate over the loaded value.
        pred: Box<dyn FnMut(u64) -> bool + Send>,
    },
    /// The program returned.
    Finish {
        /// Total floating-point operations this processor performed.
        flops: u64,
    },
    /// The program panicked. Carries the panic payload so the
    /// coordinator can re-raise it as the run's root cause instead of
    /// letting parked peers die with a misleading deadlock report.
    Aborted {
        /// The original `catch_unwind` payload.
        payload: Box<dyn std::any::Any + Send>,
    },
}

/// A timestamped request.
pub(crate) struct Envelope {
    pub proc: usize,
    pub at: Cycles,
    pub req: Request,
}

/// Coordinator's answer to a request.
pub(crate) enum Reply {
    /// A loaded value (reads, spins).
    Value { value: u64, at: Cycles },
    /// Success flag (`get_sub_page`).
    Flag { ok: bool, at: Cycles },
    /// Plain completion.
    Unit { at: Cycles },
}

impl Reply {
    fn at(&self) -> Cycles {
        match self {
            Self::Value { at, .. } | Self::Flag { at, .. } | Self::Unit { at } => *at,
        }
    }
}

/// Panic payload thrown inside a program thread when the coordinator has
/// unwound (e.g. after detecting a simulation deadlock). The machine's run
/// loop swallows it so the coordinator's own panic is the one reported.
pub(crate) struct CoordinatorGone;

/// One simulated processor, handed to a [`crate::program::Program`].
pub struct Cpu {
    id: usize,
    nprocs: usize,
    clock_hz: Hz,
    flops_per_cycle: u64,
    local: Cycles,
    flops: u64,
    interrupts: Option<(InterruptConfig, Cycles)>,
    native_fetch_op: bool,
    tracer: Tracer,
    tx: Sender<Envelope>,
    rx: Receiver<Reply>,
}

impl Cpu {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        id: usize,
        nprocs: usize,
        start: Cycles,
        clock_hz: Hz,
        flops_per_cycle: u64,
        interrupts: Option<InterruptConfig>,
        native_fetch_op: bool,
        tracer: Tracer,
        tx: Sender<Envelope>,
        rx: Receiver<Reply>,
    ) -> Self {
        // Unsynchronized timers: each processor's first tick lands at a
        // different phase derived from its id.
        let interrupts = interrupts.map(|cfg| {
            let phase = (id as u64 * 7919) % cfg.quantum_cycles;
            (cfg, start + phase + 1)
        });
        Self {
            id,
            nprocs,
            clock_hz,
            flops_per_cycle,
            local: start,
            flops: 0,
            interrupts,
            native_fetch_op,
            tracer,
            tx,
            rx,
        }
    }

    /// Record the completion of one barrier episode by this processor
    /// (called by the synchronization library; a no-op when the machine
    /// has no tracer attached).
    pub fn trace_barrier_episode(&self, episode: u64) {
        let (at, cell) = (self.local, self.id);
        self.tracer
            .emit_with(|| TraceEvent::BarrierEpisode { at, cell, episode });
    }

    /// This processor's index (0-based).
    #[must_use]
    pub fn id(&self) -> usize {
        self.id
    }

    /// Number of processors participating in this run.
    #[must_use]
    pub fn nprocs(&self) -> usize {
        self.nprocs
    }

    /// The local virtual clock, in cycles.
    #[must_use]
    pub fn now(&self) -> Cycles {
        self.local
    }

    /// Cell clock rate.
    #[must_use]
    pub fn clock_hz(&self) -> Hz {
        self.clock_hz
    }

    /// Perform `cycles` of private computation (loop overhead, address
    /// arithmetic, anything not touching shared memory). Timer interrupts,
    /// when enabled, land inside computation.
    pub fn compute(&mut self, cycles: Cycles) {
        let mut remaining = cycles;
        if let Some((cfg, next)) = &mut self.interrupts {
            while self.local + remaining >= *next {
                let to_interrupt = next.saturating_sub(self.local);
                remaining -= to_interrupt.min(remaining);
                self.local = *next + cfg.duration_cycles;
                *next += cfg.quantum_cycles;
            }
        }
        self.local += remaining;
    }

    /// Perform `n` floating-point operations at the pipelined peak rate
    /// (2 per cycle on the KSR-1 — 40 MFLOPS at 20 MHz).
    pub fn flops(&mut self, n: u64) {
        self.flops += n;
        self.compute(n.div_ceil(self.flops_per_cycle));
    }

    fn roundtrip(&mut self, req: Request) -> Reply {
        if self
            .tx
            .send(Envelope {
                proc: self.id,
                at: self.local,
                req,
            })
            .is_err()
        {
            std::panic::panic_any(CoordinatorGone);
        }
        let Ok(reply) = crate::hotrecv::recv_hot(&self.rx) else {
            std::panic::panic_any(CoordinatorGone);
        };
        self.local = reply.at();
        // Interrupts that would have fired during the stall are treated as
        // overlapped with it: skip them without extra charge.
        if let Some((cfg, next)) = &mut self.interrupts {
            while *next <= self.local {
                *next += cfg.quantum_cycles;
            }
        }
        reply
    }

    /// Load a 64-bit word from shared memory.
    pub fn read_u64(&mut self, addr: u64) -> u64 {
        match self.roundtrip(Request::Read { addr }) {
            Reply::Value { value, .. } => value,
            _ => unreachable!("read must yield a value"),
        }
    }

    /// Store a 64-bit word to shared memory.
    pub fn write_u64(&mut self, addr: u64, value: u64) {
        self.roundtrip(Request::Write { addr, value });
    }

    /// Load an `f64` from shared memory.
    pub fn read_f64(&mut self, addr: u64) -> f64 {
        f64::from_bits(self.read_u64(addr))
    }

    /// Store an `f64` to shared memory.
    pub fn write_f64(&mut self, addr: u64, value: f64) {
        self.write_u64(addr, value.to_bits());
    }

    /// One `get_sub_page` attempt on the sub-page containing `addr`;
    /// `false` if another cell already holds it atomic.
    pub fn get_sub_page(&mut self, addr: u64) -> bool {
        match self.roundtrip(Request::GetSubPage { addr }) {
            Reply::Flag { ok, .. } => ok,
            _ => unreachable!("get_sub_page must yield a flag"),
        }
    }

    /// Spin (in hardware fashion — each retry is a fresh ring request)
    /// until `get_sub_page` succeeds. This is exactly the "naive hardware
    /// exclusive lock" of §3.2.1.
    pub fn acquire_sub_page(&mut self, addr: u64) {
        while !self.get_sub_page(addr) {}
    }

    /// Release a sub-page held atomic.
    pub fn release_sub_page(&mut self, addr: u64) {
        self.roundtrip(Request::ReleaseSubPage { addr });
    }

    /// Whether this machine has a native fetch-and-Φ instruction (the
    /// KSR-1 does not; the §3.2.3 comparison machines do).
    #[must_use]
    pub fn has_native_fetch_op(&self) -> bool {
        self.native_fetch_op
    }

    /// Architecture-appropriate atomic fetch-and-add: a single fabric
    /// transaction where the hardware offers one, otherwise the KSR-1
    /// synthesis from `get_sub_page` (§3.2.2). Returns the old value.
    pub fn fetch_add(&mut self, addr: u64, delta: u64) -> u64 {
        if self.native_fetch_op {
            match self.roundtrip(Request::FetchAdd { addr, delta }) {
                Reply::Value { value, .. } => value,
                _ => unreachable!("fetch_add must yield the old value"),
            }
        } else {
            self.acquire_sub_page(addr);
            let old = self.read_u64(addr);
            self.write_u64(addr, old.wrapping_add(delta));
            self.release_sub_page(addr);
            old
        }
    }

    /// Issue a non-blocking `prefetch` of the sub-page containing `addr`
    /// into the local cache.
    pub fn prefetch(&mut self, addr: u64, exclusive: bool) {
        self.roundtrip(Request::Prefetch { addr, exclusive });
    }

    /// Issue a `poststore` of the sub-page containing `addr`.
    pub fn poststore(&mut self, addr: u64) {
        self.roundtrip(Request::Poststore { addr });
    }

    /// **Extension** (§4 wish list): non-blocking prefetch of a locally
    /// resident sub-page from the local cache into the sub-cache —
    /// "given that there is roughly an order of magnitude difference
    /// between their access times".
    pub fn prefetch_subcache(&mut self, addr: u64) {
        self.roundtrip(Request::SubcachePrefetch { addr });
    }

    /// Spin on the word at `addr` until `pred` holds; returns the value
    /// that satisfied it. Semantically identical to
    /// `loop { let v = read(addr); if pred(v) { break v } }` — every
    /// wake-up is a fully costed re-read — but fast-forwarded so the
    /// simulator spends O(updates), not O(spin iterations).
    pub fn spin_until(&mut self, addr: u64, pred: impl FnMut(u64) -> bool + Send + 'static) -> u64 {
        match self.roundtrip(Request::Spin {
            addr,
            pred: Box::new(pred),
        }) {
            Reply::Value { value, .. } => value,
            _ => unreachable!("spin must yield a value"),
        }
    }

    /// Convenience: spin until the word equals `target`.
    pub fn spin_until_eq(&mut self, addr: u64, target: u64) {
        self.spin_until(addr, move |v| v == target);
    }

    pub(crate) fn finish(self) {
        let _ = self.tx.send(Envelope {
            proc: self.id,
            at: self.local,
            req: Request::Finish { flops: self.flops },
        });
    }

    /// Report a program panic to the coordinator, handing over the panic
    /// payload. If the coordinator is already gone the payload is
    /// dropped — the coordinator's own panic is then the one the user
    /// sees, which is the right diagnosis in that case.
    pub(crate) fn abort(self, payload: Box<dyn std::any::Any + Send>) {
        let _ = self.tx.send(Envelope {
            proc: self.id,
            at: self.local,
            req: Request::Aborted { payload },
        });
    }
}

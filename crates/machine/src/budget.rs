//! Process-wide budget on simulated-processor OS threads.
//!
//! Only the **threaded oracle core** (`KSR_CORE=threaded`, see
//! [`CoreKind`](crate::machine::CoreKind)) spawns one OS thread per
//! simulated processor; the default event core spawns nothing and never
//! consults this module. The budget — like the oracle it serves — is
//! scheduled for removal once the event core has carried a full release.
//!
//! A single machine is bounded by its cell count,
//! but a parallel experiment executor runs many machines at once, and
//! `jobs × procs-per-machine` can otherwise exhaust the host's thread
//! limit. The budget caps the *total* number of in-flight processor
//! threads across the whole process:
//!
//! * A run acquires one permit per program before spawning and releases
//!   them all when the run finishes (or unwinds).
//! * Acquisition blocks until the request fits under the cap — **or**
//!   until nothing else holds permits, in which case the request is
//!   granted even if it alone exceeds the cap. A machine larger than
//!   the whole budget therefore still runs (alone) instead of
//!   deadlocking, and one oversized job cannot starve forever.
//!
//! The default cap is generous ([`DEFAULT_THREAD_CAP`]); executors that
//! know their parallelism call [`set_thread_cap`] with
//! `jobs × procs-per-machine` (clamped) before fanning out.

use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};

/// Cap applied when no executor has called [`set_thread_cap`]: roomy
/// enough for a handful of concurrent 64-cell machines, far below
/// typical OS thread limits.
pub const DEFAULT_THREAD_CAP: usize = 512;

/// (configured cap, permits currently held). `None` means "use
/// [`DEFAULT_THREAD_CAP`]".
static STATE: Mutex<(Option<usize>, usize)> = Mutex::new((None, 0));
static WAKE: Condvar = Condvar::new();

/// Lock the budget state, shrugging off poison: a thread that panicked
/// while holding the lock can only have left a consistent
/// `(cap, permits)` pair (both fields are plain integers updated in
/// place), so one aborted machine must not cascade into a process-wide
/// panic storm under a parallel executor.
fn lock_state() -> MutexGuard<'static, (Option<usize>, usize)> {
    STATE.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Set the process-wide cap on concurrent simulated-processor threads.
/// Takes effect for every subsequent acquisition; a cap of 0 is treated
/// as 1.
pub fn set_thread_cap(cap: usize) {
    let mut st = lock_state();
    st.0 = Some(cap.max(1));
    WAKE.notify_all();
}

/// The currently configured cap.
#[must_use]
pub fn thread_cap() -> usize {
    lock_state().0.unwrap_or(DEFAULT_THREAD_CAP)
}

/// Permits held for one run; released on drop (including unwinds).
pub(crate) struct BudgetGuard {
    n: usize,
}

/// Block until `n` processor threads fit in the budget, then reserve
/// them. See the module docs for the oversized-request rule.
pub(crate) fn acquire(n: usize) -> BudgetGuard {
    let mut st = lock_state();
    loop {
        let cap = st.0.unwrap_or(DEFAULT_THREAD_CAP);
        if st.1 == 0 || st.1 + n <= cap {
            st.1 += n;
            return BudgetGuard { n };
        }
        st = WAKE.wait(st).unwrap_or_else(PoisonError::into_inner);
    }
}

impl Drop for BudgetGuard {
    fn drop(&mut self) {
        let mut st = lock_state();
        st.1 = st.1.saturating_sub(self.n);
        WAKE.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The budget is process-global, so these tests share state with any
    // concurrently running machine tests; assert only relative effects.

    #[test]
    fn permits_are_returned_on_drop() {
        let before = lock_state().1;
        {
            let _g = acquire(3);
            assert!(lock_state().1 >= before + 3);
        }
        assert!(lock_state().1 <= before + 3);
    }

    #[test]
    fn permits_are_returned_when_the_holder_panics() {
        let before = lock_state().1;
        let result = std::panic::catch_unwind(|| {
            let _g = acquire(5);
            panic!("simulated program abort while holding permits");
        });
        assert!(result.is_err());
        // The guard's Drop ran during the unwind: those 5 permits are
        // back (other concurrent tests may hold their own, so compare
        // relatively, as the drop test above does).
        assert!(lock_state().1 <= before + 5);
        drop(acquire(5));
    }

    #[test]
    fn poisoned_lock_does_not_cascade() {
        // Poison the budget mutex the only way possible: panic while
        // holding it. One aborted machine under `--jobs N` must not turn
        // every other job's budget call into a panic.
        let _ = std::thread::spawn(|| {
            let _guard = STATE.lock().unwrap_or_else(PoisonError::into_inner);
            panic!("poison the budget lock");
        })
        .join();
        assert!(thread_cap() >= 1);
        drop(acquire(2));
        set_thread_cap(thread_cap());
    }

    #[test]
    fn oversized_request_is_granted_when_idle() {
        // Even a request far above the cap must not deadlock: it is
        // admitted as soon as nothing else holds permits.
        let g = acquire(DEFAULT_THREAD_CAP * 4);
        drop(g);
    }
}

//! Process-wide budget on simulated-processor OS threads.
//!
//! [`Machine::run`](crate::Machine::run) spawns one OS thread per
//! simulated processor. A single machine is bounded by its cell count,
//! but a parallel experiment executor runs many machines at once, and
//! `jobs × procs-per-machine` can otherwise exhaust the host's thread
//! limit. The budget caps the *total* number of in-flight processor
//! threads across the whole process:
//!
//! * A run acquires one permit per program before spawning and releases
//!   them all when the run finishes (or unwinds).
//! * Acquisition blocks until the request fits under the cap — **or**
//!   until nothing else holds permits, in which case the request is
//!   granted even if it alone exceeds the cap. A machine larger than
//!   the whole budget therefore still runs (alone) instead of
//!   deadlocking, and one oversized job cannot starve forever.
//!
//! The default cap is generous ([`DEFAULT_THREAD_CAP`]); executors that
//! know their parallelism call [`set_thread_cap`] with
//! `jobs × procs-per-machine` (clamped) before fanning out.

use std::sync::{Condvar, Mutex};

/// Cap applied when no executor has called [`set_thread_cap`]: roomy
/// enough for a handful of concurrent 64-cell machines, far below
/// typical OS thread limits.
pub const DEFAULT_THREAD_CAP: usize = 512;

/// (configured cap, permits currently held). `None` means "use
/// [`DEFAULT_THREAD_CAP`]".
static STATE: Mutex<(Option<usize>, usize)> = Mutex::new((None, 0));
static WAKE: Condvar = Condvar::new();

/// Set the process-wide cap on concurrent simulated-processor threads.
/// Takes effect for every subsequent acquisition; a cap of 0 is treated
/// as 1.
pub fn set_thread_cap(cap: usize) {
    let mut st = STATE.lock().expect("thread budget poisoned");
    st.0 = Some(cap.max(1));
    WAKE.notify_all();
}

/// The currently configured cap.
#[must_use]
pub fn thread_cap() -> usize {
    STATE
        .lock()
        .expect("thread budget poisoned")
        .0
        .unwrap_or(DEFAULT_THREAD_CAP)
}

/// Permits held for one run; released on drop (including unwinds).
pub(crate) struct BudgetGuard {
    n: usize,
}

/// Block until `n` processor threads fit in the budget, then reserve
/// them. See the module docs for the oversized-request rule.
pub(crate) fn acquire(n: usize) -> BudgetGuard {
    let mut st = STATE.lock().expect("thread budget poisoned");
    loop {
        let cap = st.0.unwrap_or(DEFAULT_THREAD_CAP);
        if st.1 == 0 || st.1 + n <= cap {
            st.1 += n;
            return BudgetGuard { n };
        }
        st = WAKE.wait(st).expect("thread budget poisoned");
    }
}

impl Drop for BudgetGuard {
    fn drop(&mut self) {
        let mut st = STATE.lock().expect("thread budget poisoned");
        st.1 = st.1.saturating_sub(self.n);
        WAKE.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The budget is process-global, so these tests share state with any
    // concurrently running machine tests; assert only relative effects.

    #[test]
    fn permits_are_returned_on_drop() {
        let before = STATE.lock().unwrap().1;
        {
            let _g = acquire(3);
            assert!(STATE.lock().unwrap().1 >= before + 3);
        }
        assert!(STATE.lock().unwrap().1 <= before + 3);
    }

    #[test]
    fn oversized_request_is_granted_when_idle() {
        // Even a request far above the cap must not deadlock: it is
        // admitted as soon as nothing else holds permits.
        let g = acquire(DEFAULT_THREAD_CAP * 4);
        drop(g);
    }
}

//! The Embarrassingly Parallel (EP) kernel.
//!
//! "The first one is the Embarrassingly Parallel (EP) kernel, which
//! evaluates integrals by means of pseudorandom trials and is used in many
//! Monte-Carlo simulations. As the name suggests, it is highly suited for
//! parallel machines, since there is virtually no communication among the
//! parallel tasks. Our implementation showed linear speedup." (§3.3)
//!
//! Following the NAS specification: generate pairs of uniform
//! pseudorandoms with the NAS linear congruential generator
//! (a = 5¹³, modulus 2⁴⁶), map accepted pairs to independent Gaussians by
//! the Marsaglia polar method, sum the deviates, and count how many pairs
//! land in each of ten square annuli `l ≤ max(|X|,|Y|) < l+1`. The only
//! communication is the final reduction of the per-processor counts.
//!
//! The paper reports ~11 MFLOPS sustained per processor against the
//! 40 MFLOPS peak; the per-pair `flops`/`compute` split below models the
//! same sustained/peak ratio (the acceptance-rejection loop and
//! square-root/log evaluations keep the FPU from streaming at peak).

use ksr_core::Result;
use ksr_machine::{program, Machine, Program, SharedF64, SharedU64};
use ksr_sync::{BarrierAlg, Episode, SystemBarrier};

/// Number of square annuli counted (from the NAS spec).
pub const ANNULI: usize = 10;

/// NAS LCG multiplier 5^13.
const LCG_A: u64 = 1_220_703_125;
/// NAS modulus 2^46.
const LCG_M_MASK: u64 = (1 << 46) - 1;
/// NAS EP seed.
pub const DEFAULT_SEED: u64 = 271_828_183;

/// EP problem parameters.
#[derive(Debug, Clone, Copy)]
pub struct EpConfig {
    /// Number of random pairs to generate (NAS class S is 2^24; the
    /// scaled default in the benches is 2^18).
    pub pairs: u64,
    /// LCG seed.
    pub seed: u64,
}

impl Default for EpConfig {
    fn default() -> Self {
        Self {
            pairs: 1 << 18,
            seed: DEFAULT_SEED,
        }
    }
}

/// EP result: Gaussian sums and annulus counts.
#[derive(Debug, Clone, PartialEq)]
pub struct EpResult {
    /// Sum of accepted X deviates.
    pub sx: f64,
    /// Sum of accepted Y deviates.
    pub sy: f64,
    /// Pairs per annulus.
    pub counts: [u64; ANNULI],
}

/// One step of the NAS LCG.
#[inline]
fn lcg_next(x: u64) -> u64 {
    x.wrapping_mul(LCG_A) & LCG_M_MASK
}

/// Jump the LCG ahead by `k` steps in O(log k) (used to give each
/// processor an independent, *deterministic* stream — the standard NAS EP
/// decomposition).
#[must_use]
pub fn lcg_skip(seed: u64, mut k: u64) -> u64 {
    let mut a = LCG_A;
    let mut x = seed;
    while k != 0 {
        if k & 1 == 1 {
            x = x.wrapping_mul(a) & LCG_M_MASK;
        }
        a = a.wrapping_mul(a) & LCG_M_MASK;
        k >>= 1;
    }
    x
}

/// Uniform in (-1, 1) from the 46-bit LCG state.
#[inline]
fn to_unit(x: u64) -> f64 {
    2.0 * (x as f64 / (1u64 << 46) as f64) - 1.0
}

/// Process pairs `[first, first+count)` of the stream; the core loop
/// shared by the sequential reference and each simulated processor.
fn ep_chunk(cfg: &EpConfig, first: u64, count: u64, mut per_pair: impl FnMut(u64)) -> EpResult {
    let mut state = lcg_skip(cfg.seed, 2 * first);
    let mut r = EpResult {
        sx: 0.0,
        sy: 0.0,
        counts: [0; ANNULI],
    };
    for _ in 0..count {
        state = lcg_next(state);
        let x = to_unit(state);
        state = lcg_next(state);
        let y = to_unit(state);
        let t = x * x + y * y;
        // Marsaglia polar acceptance: ~10 flops whether or not accepted,
        // ~20 more (sqrt, log) for accepted pairs.
        let mut flops = 10;
        if t <= 1.0 && t > 0.0 {
            let f = (-2.0 * t.ln() / t).sqrt();
            let gx = f * x;
            let gy = f * y;
            r.sx += gx;
            r.sy += gy;
            let l = gx.abs().max(gy.abs()) as usize;
            if l < ANNULI {
                r.counts[l] += 1;
            }
            flops += 20;
        }
        per_pair(flops);
    }
    r
}

/// Sequential reference.
#[must_use]
pub fn ep_sequential(cfg: &EpConfig) -> EpResult {
    ep_chunk(cfg, 0, cfg.pairs, |_| {})
}

/// EP wired up on a simulated machine.
#[derive(Debug, Clone, Copy)]
pub struct EpSetup {
    cfg: EpConfig,
    /// Per-proc partial sums: `[sx, sy] x procs`.
    sums: SharedF64,
    /// Per-proc annulus counts, `ANNULI` per proc.
    counts: SharedU64,
    /// Global result: sx, sy then `ANNULI` counts.
    global: SharedF64,
    barrier: SystemBarrier,
    procs: usize,
}

impl EpSetup {
    /// Allocate the reduction buffers for `procs` processors.
    pub fn new(m: &mut Machine, cfg: EpConfig, procs: usize) -> Result<Self> {
        Ok(Self {
            cfg,
            sums: SharedF64::alloc(m, 2 * procs)?,
            counts: SharedU64::alloc(m, ANNULI * procs)?,
            global: SharedF64::alloc(m, 2 + ANNULI)?,
            barrier: SystemBarrier::alloc(m, procs)?,
            procs,
        })
    }

    /// One program per processor.
    #[must_use]
    pub fn programs(&self) -> Vec<Box<dyn Program>> {
        let s = *self;
        (0..s.procs)
            .map(|p| {
                program(move |mut cpu| async move {
                    let per_proc = s.cfg.pairs / s.procs as u64;
                    let first = p as u64 * per_proc;
                    let count = if p == s.procs - 1 {
                        s.cfg.pairs - first
                    } else {
                        per_proc
                    };
                    // The compute phase: private data only. The flops/
                    // compute split reproduces the ~11-of-40 MFLOPS
                    // sustained rate the paper measured.
                    let r = ep_chunk(&s.cfg, first, count, |flops| {
                        cpu.flops(flops);
                        cpu.compute(26);
                    });
                    // Publish partials and reduce on processor 0 — the
                    // kernel's only communication.
                    s.sums.set(&mut cpu, 2 * p, r.sx).await;
                    s.sums.set(&mut cpu, 2 * p + 1, r.sy).await;
                    for (l, &c) in r.counts.iter().enumerate() {
                        s.counts.set(&mut cpu, ANNULI * p + l, c).await;
                    }
                    let mut ep = Episode::default();
                    s.barrier.wait(&mut cpu, &mut ep).await;
                    if p == 0 {
                        let mut sx = 0.0;
                        let mut sy = 0.0;
                        let mut totals = [0u64; ANNULI];
                        for q in 0..s.procs {
                            sx += s.sums.get(&mut cpu, 2 * q).await;
                            sy += s.sums.get(&mut cpu, 2 * q + 1).await;
                            cpu.flops(2);
                            for (l, t) in totals.iter_mut().enumerate() {
                                *t += s.counts.get(&mut cpu, ANNULI * q + l).await;
                            }
                        }
                        s.global.set(&mut cpu, 0, sx).await;
                        s.global.set(&mut cpu, 1, sy).await;
                        for (l, &t) in totals.iter().enumerate() {
                            s.global.set(&mut cpu, 2 + l, t as f64).await;
                        }
                    }
                })
            })
            .collect()
    }

    /// Read back the reduced result (after a run).
    pub fn result(&self, m: &mut Machine) -> EpResult {
        let mut counts = [0u64; ANNULI];
        for (l, c) in counts.iter_mut().enumerate() {
            *c = self.global.peek(m, 2 + l) as u64;
        }
        EpResult {
            sx: self.global.peek(m, 0),
            sy: self.global.peek(m, 1),
            counts,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> EpConfig {
        EpConfig {
            pairs: 4_000,
            seed: DEFAULT_SEED,
        }
    }

    #[test]
    fn lcg_skip_matches_stepping() {
        let mut x = DEFAULT_SEED;
        for k in 0..100u64 {
            assert_eq!(lcg_skip(DEFAULT_SEED, k), x, "skip({k})");
            x = lcg_next(x);
        }
    }

    #[test]
    fn sequential_is_deterministic_and_plausible() {
        let a = ep_sequential(&tiny());
        let b = ep_sequential(&tiny());
        assert_eq!(a, b);
        let total: u64 = a.counts.iter().sum();
        // ~78.5% of pairs are accepted; nearly all land in annulus 0-2.
        assert!(total > 2_500 && total < 3_500, "accepted {total}");
        assert!(a.counts[0] > a.counts[2], "annulus counts must fall off");
    }

    #[test]
    fn chunked_equals_sequential() {
        let cfg = tiny();
        let whole = ep_sequential(&cfg);
        // Stitch three chunks together manually.
        let parts = [(0u64, 1_000u64), (1_000, 2_000), (3_000, 1_000)];
        let mut sx = 0.0;
        let mut sy = 0.0;
        let mut counts = [0u64; ANNULI];
        for (first, count) in parts {
            let r = ep_chunk(&cfg, first, count, |_| {});
            sx += r.sx;
            sy += r.sy;
            for (c, rc) in counts.iter_mut().zip(r.counts) {
                *c += rc;
            }
        }
        assert_eq!(counts, whole.counts, "stream decomposition must be exact");
        assert!((sx - whole.sx).abs() < 1e-9);
        assert!((sy - whole.sy).abs() < 1e-9);
    }

    #[test]
    fn parallel_matches_sequential_counts() {
        let cfg = tiny();
        let reference = ep_sequential(&cfg);
        for procs in [1usize, 3, 4] {
            let mut m = Machine::ksr1(5).unwrap();
            let setup = EpSetup::new(&mut m, cfg, procs).unwrap();
            m.run(setup.programs()).expect("run");
            let got = setup.result(&mut m);
            assert_eq!(got.counts, reference.counts, "procs={procs}");
            assert!((got.sx - reference.sx).abs() < 1e-9);
        }
    }

    #[test]
    fn ep_speedup_is_nearly_linear() {
        let cfg = tiny();
        let time = |procs: usize| {
            let mut m = Machine::ksr1(6).unwrap();
            let setup = EpSetup::new(&mut m, cfg, procs).unwrap();
            m.run(setup.programs()).expect("run").duration_cycles()
        };
        let t1 = time(1);
        let t4 = time(4);
        let s = t1 as f64 / t4 as f64;
        assert!(
            s > 3.6,
            "EP must scale almost linearly: speedup(4) = {s:.2}"
        );
    }

    #[test]
    fn sustained_mflops_is_paper_like() {
        let cfg = tiny();
        let mut m = Machine::ksr1(7).unwrap();
        let setup = EpSetup::new(&mut m, cfg, 1).unwrap();
        let r = m.run(setup.programs()).expect("run");
        let mflops = r.mflops();
        assert!(
            (8.0..15.0).contains(&mflops),
            "paper reports ~11 MFLOPS sustained, got {mflops:.1}"
        );
    }
}

//! # ksr-nas
//!
//! The NAS Parallel Benchmark kernels and application of §3.3 of
//! *"Scalability Study of the KSR-1"*, each in two forms:
//!
//! * a **sequential reference** in plain Rust, used for speedup baselines
//!   and functional verification;
//! * a **simulated parallel implementation** running on `ksr-machine`,
//!   structured exactly as the paper describes (row-partitioned CSR
//!   mat-vec with a serial section for CG; the seven-phase replicated-
//!   bucket sort for IS; three ADI sweeps with slab/column re-partitioning
//!   for SP), with the paper's `prefetch`/`poststore` optimisation knobs.
//!
//! Parallel runs are bitwise identical to the sequential references for
//! CG and SP (same arithmetic order), exactly rank-valid for IS, and
//! count-exact for EP — so the performance experiments are always backed
//! by verified computations.

#![warn(missing_docs)]

pub mod cg;
pub mod ep;
pub mod is;
pub mod sp;

pub use cg::{cg_sequential, CgConfig, CgResult, CgSetup};
pub use ep::{ep_sequential, EpConfig, EpResult, EpSetup};
pub use is::{is_sequential, ranks_are_valid, IsConfig, IsSetup};
pub use sp::{sp_sequential, SpConfig, SpLayout, SpSetup};

//! Sparse matrices for the CG kernel, in both of the paper's formats.
//!
//! "The sequential code uses a sparse matrix representation based on a
//! column start, row index format... the elements of y are computed in a
//! piece-meal manner owing to the indirection in accessing the y vector.
//! Therefore, there is a potential for increased cache misses... Thus we
//! modified the sparse matrix representation to a row start, column index
//! format. This new format also helps in parallelizing this loop."
//! (§3.3.1, Figures 6 and 7)

use ksr_core::XorShift64;

/// Row-start / column-index (CSR) — the paper's improved format: each
/// `y[i]` is computed in its entirety, rows partition cleanly across
/// processors with no synchronization on `y`.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    /// Dimension.
    pub n: usize,
    /// `row_start[i]..row_start[i+1]` indexes row `i`'s entries.
    pub row_start: Vec<usize>,
    /// Column of each entry.
    pub col_idx: Vec<usize>,
    /// Value of each entry.
    pub values: Vec<f64>,
}

/// Column-start / row-index (CSC) — the original NASA Ames format, kept
/// for the format-comparison ablation: parallelizing over columns makes
/// multiple processors update the same `y[row]`, necessitating
/// synchronization on every `y` access.
#[derive(Debug, Clone, PartialEq)]
pub struct CscMatrix {
    /// Dimension.
    pub n: usize,
    /// `col_start[j]..col_start[j+1]` indexes column `j`'s entries.
    pub col_start: Vec<usize>,
    /// Row of each entry.
    pub row_idx: Vec<usize>,
    /// Value of each entry.
    pub values: Vec<f64>,
}

impl CsrMatrix {
    /// Number of stored entries.
    #[must_use]
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// `y = A x` (the Figure-6 loop, rewritten row-wise).
    pub fn matvec(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.n);
        assert_eq!(y.len(), self.n);
        for (i, yi) in y.iter_mut().enumerate() {
            let mut sum = 0.0;
            for k in self.row_start[i]..self.row_start[i + 1] {
                sum += self.values[k] * x[self.col_idx[k]];
            }
            *yi = sum;
        }
    }

    /// Convert to the original column-start format.
    #[must_use]
    pub fn to_csc(&self) -> CscMatrix {
        let mut col_counts = vec![0usize; self.n + 1];
        for &c in &self.col_idx {
            col_counts[c + 1] += 1;
        }
        for j in 0..self.n {
            col_counts[j + 1] += col_counts[j];
        }
        let mut col_start = col_counts.clone();
        let mut row_idx = vec![0usize; self.nnz()];
        let mut values = vec![0.0; self.nnz()];
        for i in 0..self.n {
            for k in self.row_start[i]..self.row_start[i + 1] {
                let j = self.col_idx[k];
                let dst = col_start[j];
                col_start[j] += 1;
                row_idx[dst] = i;
                values[dst] = self.values[k];
            }
        }
        CscMatrix {
            n: self.n,
            col_start: col_counts,
            row_idx,
            values,
        }
    }
}

impl CscMatrix {
    /// `y = A x` — the verbatim Figure-6 loop: piece-meal accumulation
    /// into `y` through the `row_idx` indirection.
    pub fn matvec(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.n);
        assert_eq!(y.len(), self.n);
        y.fill(0.0);
        for (j, &xj) in x.iter().enumerate() {
            for k in self.col_start[j]..self.col_start[j + 1] {
                y[self.row_idx[k]] += self.values[k] * xj;
            }
        }
    }
}

/// Generate a random sparse symmetric positive-definite matrix with about
/// `offdiag_per_row` off-diagonal entries per row (strictly diagonally
/// dominant, hence SPD). Deterministic in `seed`.
#[must_use]
pub fn random_spd(n: usize, offdiag_per_row: usize, seed: u64) -> CsrMatrix {
    let mut rng = XorShift64::new(seed);
    // Symmetric off-diagonal pattern.
    let mut rows: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n];
    let pairs = n * offdiag_per_row / 2;
    for _ in 0..pairs {
        let i = rng.next_index(n);
        let j = rng.next_index(n);
        if i == j {
            continue;
        }
        let v = rng.next_f64() * 0.5 + 0.05;
        rows[i].push((j, v));
        rows[j].push((i, v));
    }
    // Merge duplicates, add a dominant diagonal.
    let mut row_start = Vec::with_capacity(n + 1);
    let mut col_idx = Vec::new();
    let mut values = Vec::new();
    row_start.push(0);
    for (i, row) in rows.iter_mut().enumerate() {
        row.sort_by_key(|&(j, _)| j);
        let mut merged: Vec<(usize, f64)> = Vec::with_capacity(row.len() + 1);
        for &(j, v) in row.iter() {
            match merged.last_mut() {
                Some(last) if last.0 == j => last.1 += v,
                _ => merged.push((j, v)),
            }
        }
        let offdiag_sum: f64 = merged.iter().map(|&(_, v)| v.abs()).sum();
        let diag = offdiag_sum + 1.0;
        let pos = merged.partition_point(|&(j, _)| j < i);
        merged.insert(pos, (i, diag));
        for (j, v) in merged {
            col_idx.push(j);
            values.push(v);
        }
        row_start.push(col_idx.len());
    }
    CsrMatrix {
        n,
        row_start,
        col_idx,
        values,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dense(a: &CsrMatrix) -> Vec<Vec<f64>> {
        let mut d = vec![vec![0.0; a.n]; a.n];
        for (i, row) in d.iter_mut().enumerate() {
            for k in a.row_start[i]..a.row_start[i + 1] {
                row[a.col_idx[k]] += a.values[k];
            }
        }
        d
    }

    #[test]
    fn generator_is_deterministic() {
        assert_eq!(random_spd(50, 6, 9), random_spd(50, 6, 9));
    }

    #[test]
    fn generated_matrix_is_symmetric() {
        let a = random_spd(40, 8, 3);
        let d = dense(&a);
        for (i, row) in d.iter().enumerate() {
            for (j, &v) in row.iter().enumerate() {
                assert!((v - d[j][i]).abs() < 1e-12, "asymmetry at ({i},{j})");
            }
        }
    }

    #[test]
    fn generated_matrix_is_diagonally_dominant() {
        let a = random_spd(60, 10, 4);
        let d = dense(&a);
        for (i, row) in d.iter().enumerate() {
            let off: f64 = row
                .iter()
                .enumerate()
                .filter(|&(j, _)| j != i)
                .map(|(_, v)| v.abs())
                .sum();
            assert!(row[i] > off, "row {i} not dominant");
        }
    }

    #[test]
    fn row_structure_is_sorted_and_consistent() {
        let a = random_spd(30, 4, 5);
        assert_eq!(a.row_start.len(), a.n + 1);
        assert_eq!(*a.row_start.last().unwrap(), a.nnz());
        for i in 0..a.n {
            let cols = &a.col_idx[a.row_start[i]..a.row_start[i + 1]];
            assert!(
                cols.windows(2).all(|w| w[0] < w[1]),
                "row {i} unsorted or dup"
            );
        }
    }

    #[test]
    fn csr_and_csc_matvec_agree() {
        let a = random_spd(64, 7, 11);
        let csc = a.to_csc();
        let x: Vec<f64> = (0..a.n).map(|i| (i as f64).sin()).collect();
        let mut y1 = vec![0.0; a.n];
        let mut y2 = vec![0.0; a.n];
        a.matvec(&x, &mut y1);
        csc.matvec(&x, &mut y2);
        for i in 0..a.n {
            assert!((y1[i] - y2[i]).abs() < 1e-9, "mismatch at {i}");
        }
    }

    #[test]
    fn matvec_identity_like() {
        // Diagonal-only matrix (no accepted off-diagonal pairs possible
        // with offdiag_per_row = 0).
        let a = random_spd(10, 0, 1);
        let x = vec![2.0; 10];
        let mut y = vec![0.0; 10];
        a.matvec(&x, &mut y);
        for &yi in &y {
            assert!(
                (yi - 2.0).abs() < 1e-12,
                "diag must be 1.0 with no off-diag"
            );
        }
    }
}

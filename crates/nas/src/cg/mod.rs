//! The Conjugate Gradient (CG) kernel (§3.3.1, Table 1, Figure 8).
//!
//! "The CG kernel computes an approximation to the smallest eigenvalue of
//! a sparse symmetric positive definite matrix. On profiling the original
//! sequential code, we observed that most of the time (more than 90%) is
//! spent in a sparse matrix multiplication routine of the form y = Ax...
//! Since most of the time is spent only in this multiplication routine, we
//! parallelized only this routine for this study."
//!
//! Exactly as in the paper, the parallel version distributes *rows* of the
//! row-start/column-index matrix across processors — processor `p`
//! produces its block of `y` with no synchronization — while the remaining
//! vector operations (dots, AXPYs, direction update) run as a **serial
//! section** on processor 0. That serial section is what the paper blames
//! for the speedup drop at 32 processors: "the processor that executes the
//! serial code has more data to fetch from all the processors thus
//! increasing the number of remote references." The optional `poststore`
//! mode pushes each just-computed `q` sub-page to its place holders,
//! overlapping that communication with the parallel phase (the +3%
//! improvement the paper measured at 16 processors).

pub mod matrix;

pub use matrix::{random_spd, CscMatrix, CsrMatrix};

use ksr_core::Result;
use ksr_machine::{program, Machine, Program, SharedF64, SharedU64};
use ksr_sync::{BarrierAlg, Episode, SystemBarrier};

/// CG problem parameters.
#[derive(Debug, Clone, Copy)]
pub struct CgConfig {
    /// Matrix dimension (paper: 14000; scaled default: 1400).
    pub n: usize,
    /// Average off-diagonal entries per row (paper: ~145 for 2.03M
    /// non-zeros; scaled default: 14).
    pub offdiag_per_row: usize,
    /// CG iterations to run.
    pub iterations: usize,
    /// Matrix seed.
    pub seed: u64,
    /// Use `poststore` to propagate `q` values as they are computed.
    pub poststore: bool,
    /// §4-extension experiment: turn sub-caching off for the streamed
    /// matrix arrays (`values`, `col_idx`), so they stop thrashing the
    /// reused vectors out of the sub-cache. This is the hypothesis §3.3.1
    /// says the authors could not test for lack of language support.
    pub uncache_matrix: bool,
}

impl Default for CgConfig {
    fn default() -> Self {
        Self {
            n: 1400,
            offdiag_per_row: 14,
            iterations: 6,
            seed: 20_030_101,
            poststore: true,
            uncache_matrix: false,
        }
    }
}

/// Result of a CG run: solution checksum and final residual.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CgResult {
    /// Sum of the solution vector (cheap cross-check between runs).
    pub x_checksum: f64,
    /// `||r||²` after the final iteration.
    pub residual_sq: f64,
}

/// Sequential reference: CG on `Ax = b` with `b = A·1` (so the exact
/// solution is the all-ones vector). Returns the result after
/// `cfg.iterations` iterations.
#[must_use]
pub fn cg_sequential(cfg: &CgConfig) -> CgResult {
    let a = random_spd(cfg.n, cfg.offdiag_per_row, cfg.seed);
    let ones = vec![1.0; cfg.n];
    let mut b = vec![0.0; cfg.n];
    a.matvec(&ones, &mut b);

    let n = cfg.n;
    let mut x = vec![0.0; n];
    let mut r = b;
    let mut p = r.clone();
    let mut q = vec![0.0; n];
    let mut rho: f64 = r.iter().map(|v| v * v).sum();
    for _ in 0..cfg.iterations {
        a.matvec(&p, &mut q);
        let pq: f64 = p.iter().zip(&q).map(|(a, b)| a * b).sum();
        let alpha = rho / pq;
        for i in 0..n {
            x[i] += alpha * p[i];
            r[i] -= alpha * q[i];
        }
        let rho_new: f64 = r.iter().map(|v| v * v).sum();
        let beta = rho_new / rho;
        rho = rho_new;
        for i in 0..n {
            p[i] = r[i] + beta * p[i];
        }
    }
    CgResult {
        x_checksum: x.iter().sum(),
        residual_sq: rho,
    }
}

/// CG wired onto a simulated machine.
#[derive(Debug)]
pub struct CgSetup {
    cfg: CgConfig,
    values: SharedF64,
    col_idx: SharedU64,
    row_start: SharedU64,
    x: SharedF64,
    r: SharedF64,
    p: SharedF64,
    q: SharedF64,
    /// Scalars: [rho, result_checksum, result_residual].
    scalars: SharedF64,
    barrier: SystemBarrier,
    procs: usize,
}

impl CgSetup {
    /// Allocate and initialise the shared problem state. Matrix data is
    /// warmed into processor 0's local cache (the sequential setup code
    /// ran there), so first-iteration fetches by other processors are the
    /// same compulsory remote misses the real run would see.
    pub fn new(m: &mut Machine, cfg: CgConfig, procs: usize) -> Result<Self> {
        let a = random_spd(cfg.n, cfg.offdiag_per_row, cfg.seed);
        let n = cfg.n;
        let nnz = a.nnz();
        let values = SharedF64::alloc(m, nnz)?;
        let col_idx = SharedU64::alloc(m, nnz)?;
        let row_start = SharedU64::alloc(m, n + 1)?;
        let x = SharedF64::alloc(m, n)?;
        let r = SharedF64::alloc(m, n)?;
        let p = SharedF64::alloc(m, n)?;
        let q = SharedF64::alloc(m, n)?;
        let scalars = SharedF64::alloc(m, 3)?;
        for (k, &v) in a.values.iter().enumerate() {
            values.poke(m, k, v);
        }
        for (k, &c) in a.col_idx.iter().enumerate() {
            col_idx.poke(m, k, c as u64);
        }
        for (i, &s) in a.row_start.iter().enumerate() {
            row_start.poke(m, i, s as u64);
        }
        // b = A·1; r = p = b; x = 0.
        let ones = vec![1.0; n];
        let mut b = vec![0.0; n];
        a.matvec(&ones, &mut b);
        let mut rho = 0.0;
        for (i, &bi) in b.iter().enumerate() {
            x.poke(m, i, 0.0);
            r.poke(m, i, bi);
            p.poke(m, i, bi);
            q.poke(m, i, 0.0);
            rho += bi * bi;
        }
        scalars.poke(m, 0, rho);
        // The sequential setup ran on cell 0.
        m.warm(0, values.addr(0), nnz as u64 * 8);
        m.warm(0, col_idx.addr(0), nnz as u64 * 8);
        m.warm(0, row_start.addr(0), (n as u64 + 1) * 8);
        for v in [&x, &r, &p, &q] {
            m.warm(0, v.addr(0), n as u64 * 8);
        }
        if cfg.uncache_matrix {
            m.set_uncached(values.addr(0), nnz as u64 * 8);
            m.set_uncached(col_idx.addr(0), nnz as u64 * 8);
        }
        let barrier = SystemBarrier::alloc(m, procs)?;
        Ok(Self {
            cfg,
            values,
            col_idx,
            row_start,
            x,
            r,
            p,
            q,
            scalars,
            barrier,
            procs,
        })
    }

    /// One program per processor.
    #[must_use]
    pub fn programs(&self) -> Vec<Box<dyn Program>> {
        let procs = self.procs;
        let cfg = self.cfg;
        let (values, col_idx, row_start) = (self.values, self.col_idx, self.row_start);
        let (x, r, p_vec, q, scalars, barrier) =
            (self.x, self.r, self.p, self.q, self.scalars, self.barrier);
        (0..procs)
            .map(|pid| {
                program(move |mut cpu| async move {
                    let n = cfg.n;
                    let lo = pid * n / procs;
                    let hi = (pid + 1) * n / procs;
                    let mut ep = Episode::default();
                    for _ in 0..cfg.iterations {
                        // ---- parallel phase: q[lo..hi] = (A p)[lo..hi]
                        let mut rs = row_start.get(&mut cpu, lo).await as usize;
                        for i in lo..hi {
                            let re = row_start.get(&mut cpu, i + 1).await as usize;
                            let mut sum = 0.0;
                            for k in rs..re {
                                let v = values.get(&mut cpu, k).await;
                                let c = col_idx.get(&mut cpu, k).await as usize;
                                let xv = p_vec.get(&mut cpu, c).await;
                                sum += v * xv;
                                cpu.flops(2);
                                cpu.compute(2); // index arithmetic
                            }
                            q.set(&mut cpu, i, sum).await;
                            // Propagate finished sub-pages eagerly so the
                            // serial section finds them locally.
                            if cfg.poststore && (i + 1) % 16 == 0 {
                                q.poststore(&mut cpu, i).await;
                            }
                            rs = re;
                        }
                        if cfg.poststore && hi > lo {
                            q.poststore(&mut cpu, hi - 1).await;
                        }
                        barrier.wait(&mut cpu, &mut ep).await;
                        // ---- serial section on processor 0
                        if pid == 0 {
                            let rho = scalars.get(&mut cpu, 0).await;
                            let mut pq = 0.0;
                            for i in 0..n {
                                pq += p_vec.get(&mut cpu, i).await * q.get(&mut cpu, i).await;
                                cpu.flops(2);
                            }
                            let alpha = rho / pq;
                            cpu.flops(1);
                            let mut rho_new = 0.0;
                            for i in 0..n {
                                let xi =
                                    x.get(&mut cpu, i).await + alpha * p_vec.get(&mut cpu, i).await;
                                x.set(&mut cpu, i, xi).await;
                                let ri =
                                    r.get(&mut cpu, i).await - alpha * q.get(&mut cpu, i).await;
                                r.set(&mut cpu, i, ri).await;
                                rho_new += ri * ri;
                                cpu.flops(6);
                            }
                            let beta = rho_new / rho;
                            cpu.flops(1);
                            for i in 0..n {
                                let pi =
                                    r.get(&mut cpu, i).await + beta * p_vec.get(&mut cpu, i).await;
                                p_vec.set(&mut cpu, i, pi).await;
                                cpu.flops(2);
                            }
                            scalars.set(&mut cpu, 0, rho_new).await;
                        }
                        barrier.wait(&mut cpu, &mut ep).await;
                    }
                    if pid == 0 {
                        let mut sum = 0.0;
                        for i in 0..n {
                            sum += x.get(&mut cpu, i).await;
                            cpu.flops(1);
                        }
                        scalars.set(&mut cpu, 1, sum).await;
                        let rho = scalars.get(&mut cpu, 0).await;
                        scalars.set(&mut cpu, 2, rho).await;
                    }
                })
            })
            .collect()
    }

    /// Read back the result after a run.
    pub fn result(&self, m: &mut Machine) -> CgResult {
        CgResult {
            x_checksum: self.scalars.peek(m, 1),
            residual_sq: self.scalars.peek(m, 2),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> CgConfig {
        CgConfig {
            n: 120,
            offdiag_per_row: 6,
            iterations: 4,
            seed: 77,
            poststore: false,
            uncache_matrix: false,
        }
    }

    #[test]
    fn sequential_residual_shrinks() {
        let cfg = tiny();
        let r1 = cg_sequential(&CgConfig {
            iterations: 1,
            ..cfg
        });
        let r4 = cg_sequential(&CgConfig {
            iterations: 4,
            ..cfg
        });
        assert!(
            r4.residual_sq < r1.residual_sq / 10.0,
            "{} vs {}",
            r4.residual_sq,
            r1.residual_sq
        );
    }

    #[test]
    fn sequential_converges_to_ones() {
        // b = A·1, so x -> 1 and the checksum -> n.
        let cfg = CgConfig {
            iterations: 30,
            ..tiny()
        };
        let r = cg_sequential(&cfg);
        assert!(
            (r.x_checksum - cfg.n as f64).abs() < 0.1,
            "checksum {} should approach n={}",
            r.x_checksum,
            cfg.n
        );
    }

    #[test]
    fn parallel_matches_sequential_bitwise() {
        let cfg = tiny();
        let reference = cg_sequential(&cfg);
        for procs in [1usize, 2, 5] {
            let mut m = Machine::ksr1_scaled(42, 64).unwrap();
            let setup = CgSetup::new(&mut m, cfg, procs).unwrap();
            m.run(setup.programs()).expect("run");
            let got = setup.result(&mut m);
            assert_eq!(
                got.x_checksum.to_bits(),
                reference.x_checksum.to_bits(),
                "procs={procs}: parallel CG must be bitwise identical"
            );
            assert_eq!(got.residual_sq.to_bits(), reference.residual_sq.to_bits());
        }
    }

    #[test]
    fn poststore_variant_is_numerically_identical() {
        let cfg = tiny();
        let plain = cg_sequential(&cfg);
        let mut m = Machine::ksr1_scaled(43, 64).unwrap();
        let setup = CgSetup::new(
            &mut m,
            CgConfig {
                poststore: true,
                ..cfg
            },
            4,
        )
        .unwrap();
        m.run(setup.programs()).expect("run");
        assert_eq!(
            setup.result(&mut m).x_checksum.to_bits(),
            plain.x_checksum.to_bits()
        );
    }

    #[test]
    fn parallel_speeds_up() {
        let cfg = tiny();
        let time = |procs| {
            let mut m = Machine::ksr1_scaled(44, 64).unwrap();
            let setup = CgSetup::new(&mut m, cfg, procs).unwrap();
            m.run(setup.programs()).expect("run").duration_cycles()
        };
        let t1 = time(1);
        let t4 = time(4);
        assert!(
            (t1 as f64 / t4 as f64) > 1.8,
            "CG should speed up: t1={t1} t4={t4}"
        );
    }
}

//! The Scalar Pentadiagonal (SP) application (§3.3.3, Tables 3 and 4).
//!
//! "The SP code implements an iterative partial differential equation
//! solver, that mimics the behavior of computational fluid dynamic codes
//! used in aerodynamic simulation." Each iteration is "composed of three
//! phases of computation" — an ADI-style sweep along each grid axis, every
//! sweep solving an independent scalar pentadiagonal system along every
//! grid line — and "communication between processors occurs at the
//! beginning of each phase."
//!
//! The grid is partitioned in k-slabs for the x and y sweeps and re-
//! partitioned in j-columns for the z sweep, so the z sweep (and the next
//! iteration's x sweep) begin with the cross-processor traffic the paper
//! describes. Three optimisation knobs reproduce Table 4's ladder:
//!
//! * [`SpLayout::Base`] aligns all six field arrays to the sub-cache way
//!   span, so lock-step line walks collide in the 2-way first-level cache
//!   and the random replacement policy thrashes — the behaviour the
//!   authors found via the hardware performance monitor;
//!   [`SpLayout::Padded`] staggers the arrays by one 2 KB block each
//!   ("data padding and alignment", −15%);
//! * `prefetch` issues non-blocking line prefetches at each phase start
//!   ("prefetching appropriate data", a further −11%);
//! * `poststore` broadcasts each written line — which the paper found
//!   *hurts*, "because even though data might be copied into the caches
//!   of the other processors that need the value, it is in a shared
//!   state" and the next phase's writer pays the invalidation.

pub mod penta;

pub use penta::{random_dominant, solve_penta, PentaSystem};

use ksr_core::{Result, XorShift64};
use ksr_machine::{program, Cpu, Machine, Program, SharedF64};
use ksr_sync::{BarrierAlg, Episode, SystemBarrier};

/// Field-array layout policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpLayout {
    /// All arrays aligned to the sub-cache way span (conflict-heavy, the
    /// unoptimised original).
    Base,
    /// Arrays staggered by one 2 KB sub-cache block each.
    Padded,
}

/// SP problem parameters.
#[derive(Debug, Clone, Copy)]
pub struct SpConfig {
    /// Grid edge length (paper: 64; scaled default 16).
    pub n: usize,
    /// Solver iterations (the paper's benchmark runs 400; the shape of
    /// the scaling table is identical from a handful).
    pub iterations: usize,
    /// Coefficient seed.
    pub seed: u64,
    /// Array layout policy.
    pub layout: SpLayout,
    /// Prefetch upcoming lines at phase starts.
    pub prefetch: bool,
    /// Poststore written lines (the counter-productive option).
    pub poststore: bool,
}

impl Default for SpConfig {
    fn default() -> Self {
        Self {
            n: 16,
            iterations: 2,
            seed: 646_464,
            layout: SpLayout::Padded,
            prefetch: true,
            poststore: false,
        }
    }
}

/// The six grid fields: five pentadiagonal coefficient arrays + solution.
const FIELDS: usize = 6;
/// Sub-cache way span of the full-size KSR-1 geometry (64 sets × 2 KB).
const WAY_SPAN: u64 = 128 * 1024;
/// One sub-cache block.
const BLOCK: u64 = 2 * 1024;

/// Deterministic per-cell coefficients: five diagonals, dominant `d`.
fn coefficients(n: usize, seed: u64) -> [Vec<f64>; 5] {
    let mut rng = XorShift64::new(seed);
    let cells = n * n * n;
    let mut gen = |scale: f64| {
        (0..cells)
            .map(|_| (rng.next_f64() - 0.5) * scale)
            .collect::<Vec<f64>>()
    };
    let e = gen(0.3);
    let c = gen(0.5);
    let a = gen(0.5);
    let b = gen(0.3);
    let mut rng2 = XorShift64::new(seed ^ 0xD1AB_0136);
    let d = (0..cells)
        .map(|i| 1.0 + e[i].abs() + c[i].abs() + a[i].abs() + b[i].abs() + rng2.next_f64())
        .collect();
    [e, c, d, a, b]
}

fn initial_u(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = XorShift64::new(seed ^ 0x5EED_0001);
    (0..n * n * n).map(|_| rng.next_f64()).collect()
}

#[inline]
fn idx(n: usize, i: usize, j: usize, k: usize) -> usize {
    (k * n + j) * n + i
}

/// Solve one line in place given gathered coefficients; returns the
/// solution in `rhs`.
fn solve_gathered(
    e: &mut [f64],
    c: &mut [f64],
    d: &mut [f64],
    a: &mut [f64],
    b: &mut [f64],
    rhs: &mut [f64],
) {
    solve_penta(e, c, d, a, b, rhs);
}

/// Sequential reference. Returns the final `u` grid.
#[must_use]
pub fn sp_sequential(cfg: &SpConfig) -> Vec<f64> {
    let n = cfg.n;
    let [ce, cc, cd, ca, cb] = coefficients(n, cfg.seed);
    let mut u = initial_u(n, cfg.seed);
    let mut scratch = vec![0.0f64; 6 * n];
    for _ in 0..cfg.iterations {
        for dir in 0..3 {
            for outer in 0..n {
                for inner in 0..n {
                    // Gather the line.
                    let cell = |t: usize| match dir {
                        0 => idx(n, t, inner, outer), // x-lines: (j,k) fixed
                        1 => idx(n, inner, t, outer), // y-lines: (i,k) fixed
                        _ => idx(n, inner, outer, t), // z-lines: (i,j) fixed
                    };
                    let (se, rest) = scratch.split_at_mut(n);
                    let (sc, rest) = rest.split_at_mut(n);
                    let (sd, rest) = rest.split_at_mut(n);
                    let (sa, rest) = rest.split_at_mut(n);
                    let (sb, sr) = rest.split_at_mut(n);
                    for t in 0..n {
                        let g = cell(t);
                        se[t] = ce[g];
                        sc[t] = cc[g];
                        sd[t] = cd[g];
                        sa[t] = ca[g];
                        sb[t] = cb[g];
                        sr[t] = u[g];
                    }
                    solve_gathered(se, sc, sd, sa, sb, sr);
                    for t in 0..n {
                        u[cell(t)] = sr[t];
                    }
                }
            }
        }
    }
    u
}

/// SP wired onto a simulated machine (full-size cache geometry — the
/// Table-4 effects are *conflict* misses, not capacity misses).
#[derive(Debug)]
pub struct SpSetup {
    cfg: SpConfig,
    fields: [SharedF64; FIELDS], // e, c, d, a, b, u
    barrier: SystemBarrier,
    procs: usize,
}

impl SpSetup {
    /// Allocate the six field arrays under the configured layout policy
    /// and install the coefficients and the initial guess.
    pub fn new(m: &mut Machine, cfg: SpConfig, procs: usize) -> Result<Self> {
        let n = cfg.n;
        let cells = n * n * n;
        let bytes = cells as u64 * 8;
        let mut fields = Vec::with_capacity(FIELDS);
        for f in 0..FIELDS {
            let arr = match cfg.layout {
                SpLayout::Base => {
                    // Same offset within the way span for every array.
                    let raw = m.alloc(bytes + WAY_SPAN, WAY_SPAN)?;
                    SharedF64::from_raw(raw, cells)
                }
                SpLayout::Padded => {
                    // Stagger each array by one block.
                    let raw = m.alloc(bytes + WAY_SPAN + FIELDS as u64 * BLOCK, WAY_SPAN)?;
                    SharedF64::from_raw(raw + f as u64 * BLOCK, cells)
                }
            };
            fields.push(arr);
        }
        let fields: [SharedF64; FIELDS] = fields.try_into().expect("six fields");
        let [ce, cc, cd, ca, cb] = coefficients(n, cfg.seed);
        let u0 = initial_u(n, cfg.seed);
        for (arr, vals) in fields.iter().zip([&ce, &cc, &cd, &ca, &cb, &u0]) {
            for (g, &v) in vals.iter().enumerate() {
                arr.poke(m, g, v);
            }
            // Sequential initialisation ran on cell 0.
            m.warm(0, arr.addr(0), bytes);
        }
        let barrier = SystemBarrier::alloc(m, procs)?;
        Ok(Self {
            cfg,
            fields,
            barrier,
            procs,
        })
    }

    /// One program per processor.
    #[must_use]
    pub fn programs(&self) -> Vec<Box<dyn Program>> {
        let cfg = self.cfg;
        let fields = self.fields;
        let barrier = self.barrier;
        let procs = self.procs;
        (0..procs)
            .map(|pid| {
                program(move |mut cpu| async move {
                    let n = cfg.n;
                    let mut ep = Episode::default();
                    let mut scratch = vec![0.0f64; 6 * n];
                    for _ in 0..cfg.iterations {
                        for dir in 0..3 {
                            // Lines — not whole planes — are distributed,
                            // so 31 processors load-balance a 32-plane
                            // grid the way the paper's 31 processors did
                            // on 64³. x/y sweeps keep lines within
                            // k-planes; the z sweep regroups them by
                            // j-plane (cross-partition communication at
                            // the phase boundary).
                            let lines = n * n;
                            let (llo, lhi) = (pid * lines / procs, (pid + 1) * lines / procs);
                            // "By using prefetches, at the beginning of
                            // these phases": pull in the sub-pages of the
                            // *solution* array my new partition covers,
                            // software-pipelined one line ahead so the
                            // fetches overlap the current line's solve.
                            // In the x-sweep each line owns its sub-pages
                            // outright (contiguous in i) and is fetched
                            // exclusive; in the z-sweep a sub-page spans
                            // sixteen i-lines, so one line per i-block
                            // fetches the block's column — exclusive only
                            // when the whole block is mine, shared at
                            // partition boundaries so a neighbour's
                            // ownership is not stolen. Only the sweeps
                            // following a re-partition need this; the y
                            // sweep reuses the x sweep's planes, and the
                            // read-only coefficient arrays settle after
                            // the first iteration.
                            async fn prefetch_line(
                                cpu: &mut Cpu,
                                sol: SharedF64,
                                dir: usize,
                                n: usize,
                                (llo, lhi): (usize, usize),
                                l: usize,
                                first: bool,
                            ) {
                                let (outer, inner) = (l / n, l % n);
                                if dir == 0 {
                                    let base = idx(n, 0, inner, outer);
                                    let mut t = 0;
                                    while t < n {
                                        sol.prefetch(cpu, base + t, true).await;
                                        t += 16; // one 128 B sub-page
                                    }
                                } else if inner % 16 == 0 || first {
                                    let block = inner - inner % 16;
                                    let block_lines =
                                        outer * n + block..outer * n + (block + 16).min(n);
                                    let exclusive =
                                        llo <= block_lines.start && block_lines.end <= lhi;
                                    for t in 0..n {
                                        sol.prefetch(cpu, idx(n, block, outer, t), exclusive).await;
                                    }
                                }
                            }
                            let do_prefetch = cfg.prefetch && dir != 1 && llo < lhi;
                            if do_prefetch {
                                prefetch_line(&mut cpu, fields[5], dir, n, (llo, lhi), llo, true)
                                    .await;
                            }
                            for l in llo..lhi {
                                let (outer, inner) = (l / n, l % n);
                                if do_prefetch && l + 1 < lhi {
                                    prefetch_line(
                                        &mut cpu,
                                        fields[5],
                                        dir,
                                        n,
                                        (llo, lhi),
                                        l + 1,
                                        false,
                                    )
                                    .await;
                                }
                                let cell = |t: usize| match dir {
                                    0 => idx(n, t, inner, outer),
                                    1 => idx(n, inner, t, outer),
                                    _ => idx(n, inner, outer, t),
                                };
                                let (se, rest) = scratch.split_at_mut(n);
                                let (sc, rest) = rest.split_at_mut(n);
                                let (sd, rest) = rest.split_at_mut(n);
                                let (sa, rest) = rest.split_at_mut(n);
                                let (sb, sr) = rest.split_at_mut(n);
                                for t in 0..n {
                                    let g = cell(t);
                                    se[t] = fields[0].get(&mut cpu, g).await;
                                    sc[t] = fields[1].get(&mut cpu, g).await;
                                    sd[t] = fields[2].get(&mut cpu, g).await;
                                    sa[t] = fields[3].get(&mut cpu, g).await;
                                    sb[t] = fields[4].get(&mut cpu, g).await;
                                    sr[t] = fields[5].get(&mut cpu, g).await;
                                    cpu.compute(4);
                                }
                                solve_gathered(se, sc, sd, sa, sb, sr);
                                // Arithmetic weight per point: the real SP
                                // forms the five lhs diagonals from the
                                // flow state every sweep and eliminates —
                                // on the order of 1.4 kflop per point —
                                // which is what makes the application
                                // compute-bound enough to scale to 31
                                // processors (Table 3).
                                cpu.flops(1_400 * n as u64);
                                for (t, &srt) in sr.iter().enumerate().take(n) {
                                    let g = cell(t);
                                    fields[5].set(&mut cpu, g, srt).await;
                                    if cfg.poststore && t % 16 == 15 {
                                        fields[5].poststore(&mut cpu, g).await;
                                    }
                                }
                                if cfg.poststore {
                                    fields[5].poststore(&mut cpu, cell(n - 1)).await;
                                }
                            }
                            barrier.wait(&mut cpu, &mut ep).await;
                        }
                    }
                })
            })
            .collect()
    }

    /// Read back the solution grid after a run.
    pub fn solution(&self, m: &mut Machine) -> Vec<f64> {
        let cells = self.cfg.n * self.cfg.n * self.cfg.n;
        (0..cells).map(|g| self.fields[5].peek(m, g)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SpConfig {
        SpConfig {
            n: 8,
            iterations: 1,
            ..SpConfig::default()
        }
    }

    #[test]
    fn sequential_is_deterministic() {
        assert_eq!(sp_sequential(&tiny()), sp_sequential(&tiny()));
    }

    #[test]
    fn sweeps_actually_solve_lines() {
        // After one x-sweep-only run (dir loop included, but verify via a
        // single line): gather coefficients of line (j=2,k=3), apply the
        // solved values, and check A·u_line == previous rhs.
        let cfg = tiny();
        let n = cfg.n;
        let [ce, cc, cd, ca, cb] = coefficients(n, cfg.seed);
        let u0 = initial_u(n, cfg.seed);
        // Manually solve that one line the way the sweep does.
        let line: Vec<usize> = (0..n).map(|i| idx(n, i, 2, 3)).collect();
        let sys = PentaSystem {
            e: line.iter().map(|&g| ce[g]).collect(),
            c: line.iter().map(|&g| cc[g]).collect(),
            d: line.iter().map(|&g| cd[g]).collect(),
            a: line.iter().map(|&g| ca[g]).collect(),
            b: line.iter().map(|&g| cb[g]).collect(),
        };
        let rhs: Vec<f64> = line.iter().map(|&g| u0[g]).collect();
        let mut work = sys.clone();
        let mut x = rhs.clone();
        solve_penta(
            &mut work.e,
            &mut work.c,
            &mut work.d,
            &mut work.a,
            &mut work.b,
            &mut x,
        );
        let back = sys.multiply(&x);
        for t in 0..n {
            assert!((back[t] - rhs[t]).abs() < 1e-8, "residual at {t}");
        }
    }

    #[test]
    fn parallel_matches_sequential_bitwise() {
        let cfg = tiny();
        let reference = sp_sequential(&cfg);
        for procs in [1usize, 2, 4] {
            let mut m = Machine::ksr1(60).unwrap();
            let setup = SpSetup::new(&mut m, cfg, procs).unwrap();
            m.run(setup.programs()).expect("run");
            let got = setup.solution(&mut m);
            assert_eq!(got.len(), reference.len());
            for (g, (a, b)) in got.iter().zip(&reference).enumerate() {
                assert_eq!(a.to_bits(), b.to_bits(), "procs={procs} cell {g}");
            }
        }
    }

    #[test]
    fn all_option_combinations_agree_numerically() {
        let base = sp_sequential(&tiny());
        for layout in [SpLayout::Base, SpLayout::Padded] {
            for prefetch in [false, true] {
                for poststore in [false, true] {
                    let cfg = SpConfig {
                        layout,
                        prefetch,
                        poststore,
                        ..tiny()
                    };
                    let mut m = Machine::ksr1(61).unwrap();
                    let setup = SpSetup::new(&mut m, cfg, 2).unwrap();
                    m.run(setup.programs()).expect("run");
                    let got = setup.solution(&mut m);
                    for (a, b) in got.iter().zip(&base) {
                        assert_eq!(
                            a.to_bits(),
                            b.to_bits(),
                            "options must not change the arithmetic"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn base_layout_aligns_arrays_identically() {
        let mut m = Machine::ksr1(62).unwrap();
        let s = SpSetup::new(
            &mut m,
            SpConfig {
                layout: SpLayout::Base,
                ..tiny()
            },
            1,
        )
        .unwrap();
        let offsets: Vec<u64> = s.fields.iter().map(|f| f.addr(0) % WAY_SPAN).collect();
        assert!(offsets.iter().all(|&o| o == offsets[0]), "{offsets:?}");
        let mut m = Machine::ksr1(63).unwrap();
        let s = SpSetup::new(
            &mut m,
            SpConfig {
                layout: SpLayout::Padded,
                ..tiny()
            },
            1,
        )
        .unwrap();
        let offsets: Vec<u64> = s.fields.iter().map(|f| f.addr(0) % WAY_SPAN).collect();
        let mut uniq = offsets.clone();
        uniq.dedup();
        assert_eq!(
            uniq.len(),
            FIELDS,
            "padded arrays must land in distinct blocks"
        );
    }
}

//! Scalar pentadiagonal line solver.
//!
//! SP's inner computation solves, along every grid line in each sweep
//! direction, a linear system whose matrix has five diagonals
//! (`e` at −2, `c` at −1, `d` on the main, `a` at +1, `b` at +2). This is
//! the standard pentadiagonal forward-elimination / back-substitution in
//! O(n), operating on caller-provided slices so both the sequential
//! reference (native memory) and the simulated kernel (shared-memory
//! reads funneled through the cache model) drive the same arithmetic.

/// Coefficients of one pentadiagonal line system of size `n`:
/// row `i` reads `e[i]·x[i-2] + c[i]·x[i-1] + d[i]·x[i] + a[i]·x[i+1] +
/// b[i]·x[i+2] = rhs[i]` (out-of-range terms absent).
#[derive(Debug, Clone, PartialEq)]
pub struct PentaSystem {
    /// Sub-sub-diagonal (−2).
    pub e: Vec<f64>,
    /// Sub-diagonal (−1).
    pub c: Vec<f64>,
    /// Main diagonal.
    pub d: Vec<f64>,
    /// Super-diagonal (+1).
    pub a: Vec<f64>,
    /// Super-super-diagonal (+2).
    pub b: Vec<f64>,
}

impl PentaSystem {
    /// System size.
    #[must_use]
    pub fn n(&self) -> usize {
        self.d.len()
    }

    /// Multiply: `y = A x` (used for verification).
    #[must_use]
    pub fn multiply(&self, x: &[f64]) -> Vec<f64> {
        let n = self.n();
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut s = self.d[i] * x[i];
            if i >= 1 {
                s += self.c[i] * x[i - 1];
            }
            if i >= 2 {
                s += self.e[i] * x[i - 2];
            }
            if i + 1 < n {
                s += self.a[i] * x[i + 1];
            }
            if i + 2 < n {
                s += self.b[i] * x[i + 2];
            }
            y[i] = s;
        }
        y
    }
}

/// Solve one pentadiagonal system in place.
///
/// Inputs are the five diagonals and the right-hand side as mutable
/// working slices (the eliminations scribble over them, exactly like the
/// Fortran original); on return `rhs` holds the solution. All slices must
/// have equal length ≥ 1. The matrix must be non-singular after
/// elimination (diagonally dominant systems, as SP's are, always are).
///
/// ~13 floating-point operations per point in the forward sweep and ~5 in
/// the back substitution — the counts the simulated kernel charges.
#[allow(clippy::many_single_char_names)]
pub fn solve_penta(
    e: &mut [f64],
    c: &mut [f64],
    d: &mut [f64],
    a: &mut [f64],
    b: &mut [f64],
    rhs: &mut [f64],
) {
    let n = d.len();
    assert!(
        [e.len(), c.len(), a.len(), b.len(), rhs.len()]
            .iter()
            .all(|&l| l == n),
        "diagonal lengths differ"
    );
    assert!(n >= 1, "empty system");
    // Forward elimination of the two sub-diagonals.
    for i in 0..n {
        // Eliminate c[i+1] (row i+1) and e[i+2] (row i+2) using row i.
        let piv = d[i];
        assert!(piv != 0.0, "zero pivot at row {i}");
        if i + 1 < n {
            let m1 = c[i + 1] / piv;
            d[i + 1] -= m1 * a[i];
            a[i + 1] -= m1 * b[i];
            rhs[i + 1] -= m1 * rhs[i];
            c[i + 1] = 0.0;
        }
        if i + 2 < n {
            let m2 = e[i + 2] / piv;
            c[i + 2] -= m2 * a[i];
            d[i + 2] -= m2 * b[i];
            rhs[i + 2] -= m2 * rhs[i];
            e[i + 2] = 0.0;
        }
    }
    // Back substitution.
    rhs[n - 1] /= d[n - 1];
    if n >= 2 {
        rhs[n - 2] = (rhs[n - 2] - a[n - 2] * rhs[n - 1]) / d[n - 2];
    }
    for i in (0..n.saturating_sub(2)).rev() {
        rhs[i] = (rhs[i] - a[i] * rhs[i + 1] - b[i] * rhs[i + 2]) / d[i];
    }
}

/// Generate a diagonally dominant pentadiagonal test system of size `n`,
/// deterministic in `seed`.
#[must_use]
pub fn random_dominant(n: usize, seed: u64) -> PentaSystem {
    let mut rng = ksr_core::XorShift64::new(seed);
    let mut coef = |scale: f64| {
        (0..n)
            .map(|_| (rng.next_f64() - 0.5) * scale)
            .collect::<Vec<_>>()
    };
    let e = coef(0.4);
    let c = coef(0.6);
    let a = coef(0.6);
    let b = coef(0.4);
    let d = (0..n)
        .map(|i| {
            let mut s = 1.0 + c[i].abs() + e[i].abs() + a[i].abs() + b[i].abs();
            if i % 2 == 0 {
                s = -s; // mixed signs keep the test honest
            }
            s
        })
        .collect();
    PentaSystem { e, c, d, a, b }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn solve_system(sys: &PentaSystem, rhs: &[f64]) -> Vec<f64> {
        let mut e = sys.e.clone();
        let mut c = sys.c.clone();
        let mut d = sys.d.clone();
        let mut a = sys.a.clone();
        let mut b = sys.b.clone();
        let mut r = rhs.to_vec();
        solve_penta(&mut e, &mut c, &mut d, &mut a, &mut b, &mut r);
        r
    }

    #[test]
    fn solves_identity() {
        let n = 7;
        let sys = PentaSystem {
            e: vec![0.0; n],
            c: vec![0.0; n],
            d: vec![1.0; n],
            a: vec![0.0; n],
            b: vec![0.0; n],
        };
        let rhs: Vec<f64> = (0..n).map(|i| i as f64).collect();
        assert_eq!(solve_system(&sys, &rhs), rhs);
    }

    #[test]
    fn roundtrips_random_systems() {
        for seed in [1u64, 2, 3, 9] {
            for n in [1usize, 2, 3, 5, 16, 33] {
                let sys = random_dominant(n, seed);
                let x_true: Vec<f64> = (0..n).map(|i| ((i * 7 + 3) % 11) as f64 - 5.0).collect();
                let rhs = sys.multiply(&x_true);
                let x = solve_system(&sys, &rhs);
                for i in 0..n {
                    assert!(
                        (x[i] - x_true[i]).abs() < 1e-8,
                        "n={n} seed={seed} i={i}: {} vs {}",
                        x[i],
                        x_true[i]
                    );
                }
            }
        }
    }

    #[test]
    fn multiply_matches_dense() {
        let n = 6;
        let sys = random_dominant(n, 4);
        let x: Vec<f64> = (0..n).map(|i| (i as f64).cos()).collect();
        let y = sys.multiply(&x);
        // Dense re-computation.
        for i in 0..n {
            let mut s = sys.d[i] * x[i];
            if i >= 1 {
                s += sys.c[i] * x[i - 1];
            }
            if i >= 2 {
                s += sys.e[i] * x[i - 2];
            }
            if i + 1 < n {
                s += sys.a[i] * x[i + 1];
            }
            if i + 2 < n {
                s += sys.b[i] * x[i + 2];
            }
            assert!((y[i] - s).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "lengths differ")]
    fn mismatched_lengths_panic() {
        let mut e = vec![0.0; 3];
        let mut c = vec![0.0; 3];
        let mut d = vec![1.0; 3];
        let mut a = vec![0.0; 3];
        let mut b = vec![0.0; 2];
        let mut r = vec![0.0; 3];
        solve_penta(&mut e, &mut c, &mut d, &mut a, &mut b, &mut r);
    }
}

//! The Integer Sort (IS) kernel (§3.3.2, Table 2, Figures 8 and 9).
//!
//! A bucket sort: "each key is read and count of the bucket to which it
//! belongs is incremented. A prefix sum operation is performed on the
//! bucket counts. Lastly, the keys are read in again and assigned ranks
//! using the prefix sums."
//!
//! The parallel algorithm follows Figure 9's seven phases exactly:
//!
//! 1. each processor counts its key block into its **replicated** local
//!    bucket array `keyden_t` (replication avoids synchronization on a
//!    global count — the design decision §3.3.2 discusses);
//! 2. each processor accumulates its *portion* of the global `keyden`
//!    from all processors' local counts (the all-to-all remote traffic
//!    that saturates the ring at 32 processors);
//! 3. each processor prefix-sums its portion; per-portion totals `m_i`;
//! 4. **serial**: processor 0 prefix-sums `m_1..m_P` — the phase whose
//!    cost *grows* with P and drives the rising serial fraction;
//! 5. each processor adds `tmp_sum[i-1]` to its portion → global prefix
//!    sums;
//! 6. each processor atomically copies `keyden` into its `keyden_t` while
//!    decrementing by its own counts — a chunk at a time, so access is
//!    serialized per chunk but pipelined across chunks;
//! 7. each processor ranks its keys from its private reservation.
//!
//! Between phases the system barrier is used, as in the paper.

use ksr_core::{Result, XorShift64};
use ksr_machine::{program, Machine, Program, SharedU64};
use ksr_sync::{BarrierAlg, Episode, HwLock, SystemBarrier};

/// IS problem parameters.
#[derive(Debug, Clone, Copy)]
pub struct IsConfig {
    /// Number of keys (paper: 2^23; scaled default 2^16).
    pub keys: usize,
    /// Key range / bucket count (scaled default 2^11).
    pub max_key: usize,
    /// Key-stream seed.
    pub seed: u64,
    /// Buckets per phase-6 lock chunk.
    pub chunk: usize,
}

impl Default for IsConfig {
    fn default() -> Self {
        Self {
            keys: 1 << 16,
            max_key: 1 << 11,
            seed: 19_930_401,
            chunk: 128,
        }
    }
}

/// Generate the key stream (deterministic in the seed).
#[must_use]
pub fn generate_keys(cfg: &IsConfig) -> Vec<u64> {
    let mut rng = XorShift64::new(cfg.seed);
    (0..cfg.keys)
        .map(|_| rng.next_below(cfg.max_key as u64))
        .collect()
}

/// Sequential reference: returns 0-based ranks such that sorting keys by
/// rank yields non-decreasing order (equal keys ranked by descending
/// position, matching the parallel algorithm's decrement-from-the-top).
#[must_use]
pub fn is_sequential(cfg: &IsConfig) -> Vec<u64> {
    let keys = generate_keys(cfg);
    let mut counts = vec![0u64; cfg.max_key];
    for &k in &keys {
        counts[k as usize] += 1;
    }
    let mut cum = counts;
    for b in 1..cfg.max_key {
        cum[b] += cum[b - 1];
    }
    let mut ranks = vec![0u64; cfg.keys];
    for (j, &k) in keys.iter().enumerate() {
        let b = k as usize;
        ranks[j] = cum[b] - 1;
        cum[b] -= 1;
    }
    ranks
}

/// Check that `ranks` is a valid bucket-sort ranking of `keys`.
#[must_use]
pub fn ranks_are_valid(keys: &[u64], ranks: &[u64]) -> bool {
    if keys.len() != ranks.len() {
        return false;
    }
    let n = keys.len();
    let mut sorted = vec![u64::MAX; n];
    for (j, &r) in ranks.iter().enumerate() {
        if r as usize >= n || sorted[r as usize] != u64::MAX {
            return false; // out of range or not a permutation
        }
        sorted[r as usize] = keys[j];
    }
    sorted.windows(2).all(|w| w[0] <= w[1])
}

/// IS wired onto a simulated machine.
#[derive(Debug)]
pub struct IsSetup {
    cfg: IsConfig,
    key: SharedU64,
    rank: SharedU64,
    keyden: SharedU64,
    keyden_t: SharedU64,
    msum: SharedU64,
    tmp_sum: SharedU64,
    locks: Vec<HwLock>,
    barrier: SystemBarrier,
    procs: usize,
}

impl IsSetup {
    /// Allocate and initialise shared state for `procs` processors.
    pub fn new(m: &mut Machine, cfg: IsConfig, procs: usize) -> Result<Self> {
        assert!(
            cfg.max_key.is_multiple_of(cfg.chunk),
            "chunk must divide the bucket count"
        );
        let key = SharedU64::alloc(m, cfg.keys)?;
        let rank = SharedU64::alloc(m, cfg.keys)?;
        let keyden = SharedU64::alloc(m, cfg.max_key)?;
        let keyden_t = SharedU64::alloc(m, cfg.max_key * procs)?;
        let msum = SharedU64::alloc(m, procs)?;
        let tmp_sum = SharedU64::alloc(m, procs + 1)?;
        let n_chunks = cfg.max_key / cfg.chunk;
        let locks = (0..n_chunks)
            .map(|_| HwLock::alloc(m))
            .collect::<Result<Vec<_>>>()?;
        for (j, k) in generate_keys(&cfg).into_iter().enumerate() {
            key.poke(m, j, k);
        }
        // NAS IS generates keys in parallel: each processor's block starts
        // resident in its own local cache.
        for p in 0..procs {
            let (klo, khi) = (p * cfg.keys / procs, (p + 1) * cfg.keys / procs);
            if khi > klo {
                m.warm(p, key.addr(klo), (khi - klo) as u64 * 8);
            }
        }
        let barrier = SystemBarrier::alloc(m, procs)?;
        Ok(Self {
            cfg,
            key,
            rank,
            keyden,
            keyden_t,
            msum,
            tmp_sum,
            locks,
            barrier,
            procs,
        })
    }

    /// One program per processor (the seven phases of Figure 9).
    #[must_use]
    pub fn programs(&self) -> Vec<Box<dyn Program>> {
        self.programs_impl(true)
    }

    /// Like [`programs`](Self::programs), but with the phase-6 chunk
    /// locks deliberately omitted: every processor runs its
    /// reserve-and-decrement loop over the shared `keyden` array
    /// completely unsynchronized. This is a *seeded-bug fixture* for the
    /// `ksr-verify` race detector — it is never registered as an
    /// experiment, and its ranks are garbage whenever two processors'
    /// phase-6 windows overlap.
    #[must_use]
    pub fn programs_racy_phase6(&self) -> Vec<Box<dyn Program>> {
        self.programs_impl(false)
    }

    fn programs_impl(&self, phase6_locked: bool) -> Vec<Box<dyn Program>> {
        let procs = self.procs;
        let cfg = self.cfg;
        let (key, rank, keyden, keyden_t) = (self.key, self.rank, self.keyden, self.keyden_t);
        let (msum, tmp_sum, barrier) = (self.msum, self.tmp_sum, self.barrier);
        let locks = self.locks.clone();
        (0..procs)
            .map(|pid| {
                let locks = locks.clone();
                program(move |mut cpu| async move {
                    let n = cfg.keys;
                    let nb = cfg.max_key;
                    let (klo, khi) = (pid * n / procs, (pid + 1) * n / procs);
                    let (blo, bhi) = (pid * nb / procs, (pid + 1) * nb / procs);
                    let my_t = pid * nb; // base of my keyden_t region
                    let mut ep = Episode::default();

                    // Phase 1: local bucket counts over my key block.
                    for j in klo..khi {
                        let k = key.get(&mut cpu, j).await as usize;
                        let c = keyden_t.get(&mut cpu, my_t + k).await;
                        keyden_t.set(&mut cpu, my_t + k, c + 1).await;
                        cpu.compute(3);
                    }
                    barrier.wait(&mut cpu, &mut ep).await;

                    // Phase 2: accumulate my portion of the global counts
                    // from every processor's local counts (remote reads).
                    for b in blo..bhi {
                        let mut total = 0;
                        for q in 0..procs {
                            total += keyden_t.get(&mut cpu, q * nb + b).await;
                            cpu.compute(1);
                        }
                        keyden.set(&mut cpu, b, total).await;
                    }
                    barrier.wait(&mut cpu, &mut ep).await;

                    // Phase 3: prefix sums within my portion.
                    let mut running = 0;
                    for b in blo..bhi {
                        running += keyden.get(&mut cpu, b).await;
                        keyden.set(&mut cpu, b, running).await;
                        cpu.compute(1);
                    }
                    msum.set(&mut cpu, pid, running).await;
                    barrier.wait(&mut cpu, &mut ep).await;

                    // Phase 4: serial prefix over the per-portion totals.
                    if pid == 0 {
                        let mut acc = 0;
                        tmp_sum.set(&mut cpu, 0, 0).await;
                        for q in 0..procs {
                            acc += msum.get(&mut cpu, q).await;
                            tmp_sum.set(&mut cpu, q + 1, acc).await;
                            cpu.compute(2);
                        }
                    }
                    barrier.wait(&mut cpu, &mut ep).await;

                    // Phase 5: shift my portion by the preceding total.
                    let shift = tmp_sum.get(&mut cpu, pid).await;
                    if shift != 0 {
                        for b in blo..bhi {
                            let v = keyden.get(&mut cpu, b).await;
                            keyden.set(&mut cpu, b, v + shift).await;
                            cpu.compute(1);
                        }
                    }
                    barrier.wait(&mut cpu, &mut ep).await;

                    // Phase 6: atomically reserve my ranks chunk by chunk,
                    // starting at my own portion so processors pipeline
                    // around the chunk ring instead of convoying.
                    let n_chunks = locks.len();
                    let start_chunk = blo / cfg.chunk;
                    for s in 0..n_chunks {
                        let c = (start_chunk + s) % n_chunks;
                        if phase6_locked {
                            locks[c].acquire(&mut cpu).await;
                        }
                        for b in c * cfg.chunk..(c + 1) * cfg.chunk {
                            let tot = keyden.get(&mut cpu, b).await;
                            let mine = keyden_t.get(&mut cpu, my_t + b).await;
                            keyden.set(&mut cpu, b, tot - mine).await;
                            keyden_t.set(&mut cpu, my_t + b, tot).await;
                            cpu.compute(2);
                        }
                        if phase6_locked {
                            locks[c].release(&mut cpu).await;
                        }
                    }
                    barrier.wait(&mut cpu, &mut ep).await;

                    // Phase 7: rank my keys from my private reservation.
                    for j in klo..khi {
                        let k = key.get(&mut cpu, j).await as usize;
                        let r = keyden_t.get(&mut cpu, my_t + k).await;
                        keyden_t.set(&mut cpu, my_t + k, r - 1).await;
                        rank.set(&mut cpu, j, r - 1).await;
                        cpu.compute(3);
                    }
                })
            })
            .collect()
    }

    /// Read back the rank array after a run.
    pub fn ranks(&self, m: &mut Machine) -> Vec<u64> {
        (0..self.cfg.keys).map(|j| self.rank.peek(m, j)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> IsConfig {
        IsConfig {
            keys: 2_000,
            max_key: 256,
            seed: 5,
            chunk: 64,
        }
    }

    #[test]
    fn sequential_ranks_are_valid() {
        let cfg = tiny();
        let keys = generate_keys(&cfg);
        let ranks = is_sequential(&cfg);
        assert!(ranks_are_valid(&keys, &ranks));
    }

    #[test]
    fn validity_checker_rejects_garbage() {
        let keys = vec![3, 1, 2];
        assert!(!ranks_are_valid(&keys, &[0, 0, 1]), "not a permutation");
        assert!(!ranks_are_valid(&keys, &[0, 1, 2]), "not sorted by rank");
        assert!(ranks_are_valid(&keys, &[2, 0, 1]));
    }

    #[test]
    fn parallel_ranks_are_valid_for_various_proc_counts() {
        let cfg = tiny();
        let keys = generate_keys(&cfg);
        for procs in [1usize, 2, 4, 8] {
            let mut m = Machine::ksr1_scaled(50, 64).unwrap();
            let setup = IsSetup::new(&mut m, cfg, procs).unwrap();
            m.run(setup.programs()).expect("run");
            let ranks = setup.ranks(&mut m);
            assert!(ranks_are_valid(&keys, &ranks), "procs={procs}");
        }
    }

    #[test]
    fn single_proc_matches_sequential_exactly() {
        let cfg = tiny();
        let mut m = Machine::ksr1_scaled(51, 64).unwrap();
        let setup = IsSetup::new(&mut m, cfg, 1).unwrap();
        m.run(setup.programs()).expect("run");
        assert_eq!(setup.ranks(&mut m), is_sequential(&cfg));
    }

    #[test]
    fn keys_are_in_range_and_deterministic() {
        let cfg = tiny();
        let a = generate_keys(&cfg);
        let b = generate_keys(&cfg);
        assert_eq!(a, b);
        assert!(a.iter().all(|&k| k < cfg.max_key as u64));
    }

    #[test]
    #[should_panic(expected = "chunk must divide")]
    fn bad_chunk_rejected() {
        let mut m = Machine::ksr1(1).unwrap();
        let cfg = IsConfig {
            chunk: 100,
            ..tiny()
        };
        let _ = IsSetup::new(&mut m, cfg, 2);
    }
}

//! `ksr-sim` — command-line front end for the KSR-1 simulator.
//!
//! ```text
//! ksr-sim info                          # machine presets and calibration
//! ksr-sim latency  [--procs N]          # §3.1-style latency probe
//! ksr-sim barriers [--procs N] [--machine ksr1|ksr2|symmetry|butterfly]
//! ksr-sim lock     [--procs N] [--read-pct P]
//! ksr-sim ep|cg|is|sp [--procs N]       # one kernel run, verified
//! ```

use std::process::ExitCode;

use ksr1_repro::core::time::cycles_to_seconds;
use ksr1_repro::machine::{program, Machine, SharedU64};
use ksr1_repro::nas::is::generate_keys;
use ksr1_repro::nas::{
    cg_sequential, ranks_are_valid, CgConfig, CgSetup, EpConfig, EpSetup, IsConfig, IsSetup,
    SpConfig, SpSetup,
};
use ksr1_repro::sync::{AnyBarrier, BarrierAlg, BarrierKind, Episode, HwLock, LockMode, SwRwLock};

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn flag_usize(args: &[String], name: &str, default: usize) -> usize {
    flag(args, name)
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first().cloned() else {
        eprintln!("usage: ksr-sim <info|latency|barriers|lock|ep|cg|is|sp> [options]");
        return ExitCode::FAILURE;
    };
    match cmd.as_str() {
        "info" => info(),
        "latency" => latency(&args),
        "barriers" => barriers(&args),
        "lock" => lock(&args),
        "ep" => ep(&args),
        "cg" => cg(&args),
        "is" => is(&args),
        "sp" => sp(&args),
        other => {
            eprintln!("unknown command: {other}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

fn info() {
    println!("simulated machines:");
    println!("  ksr1       32 cells, 20 MHz, 1-level slotted ring (24 slots, 2 sub-rings)");
    println!("  ksr2       64 cells, 40 MHz, 2-level ring via ARD routers");
    println!("  symmetry   bus-based snooping machine (16 MHz, native fetch-and-add)");
    println!("  butterfly  dance-hall MIN, no coherent caches");
    println!();
    println!("KSR-1 calibration (published / modelled):");
    println!("  sub-cache hit      2 / 2 cycles");
    println!("  local-cache hit   18 / 18 cycles");
    println!("  remote access    175 / ~176 cycles");
    println!("  block-alloc stride  +50% / +50%");
    println!("  page-alloc stride   +60% / +60%");
}

fn latency(args: &[String]) {
    let procs = flag_usize(args, "--procs", 1).clamp(1, 32);
    let mut m = Machine::ksr1(1).expect("machine");
    let arrays: Vec<u64> = (0..procs)
        .map(|_| m.alloc(1 << 20, 16384).expect("alloc"))
        .collect();
    let results = SharedU64::alloc(&mut m, 2 * procs).expect("alloc");
    for (p, &a) in arrays.iter().enumerate() {
        m.warm((p + 1) % 32, a, 1 << 20);
    }
    m.run(
        (0..procs)
            .map(|p| {
                let a = arrays[p];
                program(move |mut cpu| async move {
                    let samples = 512u64;
                    let t0 = cpu.now();
                    for i in 0..samples {
                        let _ = cpu.read_u64(a + i * 128).await;
                    }
                    let mean = (cpu.now() - t0) / samples;
                    results.set(&mut cpu, 2 * p, mean).await;
                    let t0 = cpu.now();
                    for i in 0..samples {
                        cpu.write_u64(a + i * 128 + 65536 * 8, i).await;
                    }
                    let mean = (cpu.now() - t0) / samples;
                    results.set(&mut cpu, 2 * p + 1, mean).await;
                })
            })
            .collect(),
    )
    .expect("run");
    let rd: u64 = (0..procs).map(|p| results.peek(&mut m, 2 * p)).sum::<u64>() / procs as u64;
    let wr: u64 = (0..procs)
        .map(|p| results.peek(&mut m, 2 * p + 1))
        .sum::<u64>()
        / procs as u64;
    println!("{procs} procs hammering remote sub-pages:");
    println!("  remote read  {rd} cycles   (published idle: 175)");
    println!("  remote write {wr} cycles");
}

fn barriers(args: &[String]) {
    let machine_name = flag(args, "--machine").unwrap_or_else(|| "ksr1".into());
    let max = match machine_name.as_str() {
        "ksr2" => 64,
        _ => 32,
    };
    let procs = flag_usize(args, "--procs", 16).clamp(2, max);
    println!("{machine_name}, {procs} processors, us per episode:");
    let mut rows: Vec<(f64, &str)> = Vec::new();
    for kind in BarrierKind::ALL {
        let mut m = match machine_name.as_str() {
            "ksr1" => Machine::ksr1(7),
            "ksr2" => Machine::ksr2(7),
            "symmetry" => Machine::symmetry(procs, 7),
            "butterfly" => Machine::butterfly(procs, 7),
            other => {
                eprintln!("unknown machine: {other}");
                return;
            }
        }
        .expect("machine");
        if !m.mem().fabric().has_coherent_caches() && kind.needs_coherent_caches() {
            continue;
        }
        let b = AnyBarrier::alloc(kind, &mut m, procs).expect("alloc");
        let eps = 10usize;
        let r = m
            .run(
                (0..procs)
                    .map(|p| {
                        program(move |mut cpu| async move {
                            let mut ep = Episode::default();
                            for e in 0..eps {
                                cpu.compute(((p * 89 + e * 37) % 200) as u64 + 20);
                                b.wait(&mut cpu, &mut ep).await;
                            }
                        })
                    })
                    .collect(),
            )
            .expect("run");
        rows.push((
            cycles_to_seconds(r.duration_cycles() / eps as u64, m.config().clock_hz) * 1e6,
            kind.label(),
        ));
    }
    rows.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite"));
    for (t, label) in rows {
        println!("  {label:<14} {t:8.1}");
    }
}

fn lock(args: &[String]) {
    let procs = flag_usize(args, "--procs", 8).clamp(1, 32);
    let read_pct = flag_usize(args, "--read-pct", 0).min(100) as u64;
    let mut m = Machine::ksr1(9).expect("machine");
    let hw = HwLock::alloc(&mut m).expect("alloc");
    let sw = SwRwLock::alloc(&mut m).expect("alloc");
    let ops = 200usize.div_ceil(procs);
    for use_sw in [false, true] {
        let r = m
            .run(
                (0..procs)
                    .map(|p| {
                        program(move |mut cpu| async move {
                            let mut rng = ksr1_repro::core::XorShift64::new(p as u64 + 1);
                            for _ in 0..ops {
                                if use_sw {
                                    let mode = if rng.next_below(100) < read_pct {
                                        LockMode::Read
                                    } else {
                                        LockMode::Write
                                    };
                                    let t = sw.acquire(&mut cpu, mode).await;
                                    cpu.compute(3_000);
                                    sw.release(&mut cpu, t).await;
                                } else {
                                    hw.acquire(&mut cpu).await;
                                    cpu.compute(3_000);
                                    hw.release(&mut cpu).await;
                                }
                                cpu.compute(10_000);
                            }
                        })
                    })
                    .collect(),
            )
            .expect("run");
        println!(
            "{}: {:.4}s for {} total ops at {procs} procs",
            if use_sw {
                format!("software RW lock ({read_pct}% reads)")
            } else {
                "hardware exclusive lock".into()
            },
            cycles_to_seconds(r.duration_cycles(), m.config().clock_hz),
            ops * procs,
        );
    }
}

fn ep(args: &[String]) {
    let procs = flag_usize(args, "--procs", 8).clamp(1, 32);
    let cfg = EpConfig {
        pairs: 1 << 16,
        ..EpConfig::default()
    };
    let mut m = Machine::ksr1(11).expect("machine");
    let setup = EpSetup::new(&mut m, cfg, procs).expect("setup");
    let r = m.run(setup.programs()).expect("run");
    let res = setup.result(&mut m);
    println!(
        "EP 2^16 pairs on {procs} procs: {:.4}s, {:.1} MFLOPS total, counts {:?}",
        r.seconds(),
        r.mflops(),
        res.counts
    );
}

fn cg(args: &[String]) {
    let procs = flag_usize(args, "--procs", 8).clamp(1, 32);
    let cfg = CgConfig {
        n: 700,
        offdiag_per_row: 72,
        iterations: 4,
        seed: 1,
        poststore: false,
        uncache_matrix: false,
    };
    let reference = cg_sequential(&cfg);
    let mut m = Machine::ksr1_scaled(12, 64).expect("machine");
    let setup = CgSetup::new(&mut m, cfg, procs).expect("setup");
    let r = m.run(setup.programs()).expect("run");
    let got = setup.result(&mut m);
    assert_eq!(
        got.x_checksum.to_bits(),
        reference.x_checksum.to_bits(),
        "verification failed"
    );
    println!(
        "CG n={} on {procs} procs: {:.4}s, residual^2 {:.3e} (bitwise-verified)",
        cfg.n,
        r.seconds(),
        got.residual_sq
    );
}

fn is(args: &[String]) {
    let procs = flag_usize(args, "--procs", 8).clamp(1, 32);
    let cfg = IsConfig {
        keys: 1 << 14,
        max_key: 1 << 10,
        seed: 2,
        chunk: 128,
    };
    let keys = generate_keys(&cfg);
    let mut m = Machine::ksr1_scaled(13, 64).expect("machine");
    let setup = IsSetup::new(&mut m, cfg, procs).expect("setup");
    let r = m.run(setup.programs()).expect("run");
    let ranks = setup.ranks(&mut m);
    assert!(ranks_are_valid(&keys, &ranks), "verification failed");
    println!(
        "IS 2^14 keys on {procs} procs: {:.4}s, mean remote latency {:.1} cycles (verified)",
        r.seconds(),
        m.perfmon_total().mean_ring_latency()
    );
}

fn sp(args: &[String]) {
    let procs = flag_usize(args, "--procs", 8).clamp(1, 32);
    let cfg = SpConfig {
        n: 16,
        iterations: 2,
        ..SpConfig::default()
    };
    let mut m = Machine::ksr1(14).expect("machine");
    let setup = SpSetup::new(&mut m, cfg, procs).expect("setup");
    let r = m.run(setup.programs()).expect("run");
    println!(
        "SP {n}^3 on {procs} procs: {:.4}s/iteration",
        r.seconds() / cfg.iterations as f64,
        n = cfg.n
    );
}

//! # ksr1-repro
//!
//! Umbrella crate for the reproduction of *"Scalability Study of the
//! KSR-1"* (ICPP 1993 / Parallel Computing 22, 1996). It re-exports the
//! workspace crates so examples and integration tests can reach the whole
//! system through one dependency:
//!
//! * [`core`] — virtual time, deterministic RNG, statistics, scalability
//!   metrics, table rendering.
//! * [`net`] — the slotted pipelined unidirectional ring (and the Symmetry
//!   bus / BBN Butterfly comparison fabrics).
//! * [`mem`] — the ALLCACHE two-level cache hierarchy and sub-page
//!   coherence protocol.
//! * [`machine`] — the deterministic event-driven machine simulator and its
//!   processor-program API.
//! * [`sync`] — locks and the nine barrier algorithms of §3.2.
//! * [`nas`] — the EP, CG, IS kernels and the SP application of §3.3.
//! * [`verify`] — trace-driven coherence checking, happens-before race
//!   detection, predictive lockset/lock-order analysis, small-scope
//!   schedule exploration, and static schedule lints (`run_all --check`).
//! * [`bench`] — the experiment registry, executor, and `--check`
//!   harness behind every `results/` artifact.
//!
//! See `README.md` for a quickstart and `DESIGN.md` for the experiment
//! index.

#![warn(missing_docs)]

pub use ksr_bench as bench;
pub use ksr_core as core;
pub use ksr_machine as machine;
pub use ksr_mem as mem;
pub use ksr_nas as nas;
pub use ksr_net as net;
pub use ksr_sync as sync;
pub use ksr_verify as verify;

//! Walk SP through the paper's §3.3.3 optimisation ladder on a small
//! grid: base layout → data padding/alignment → prefetch → (the
//! counter-productive) poststore. A runnable miniature of Table 4.
//!
//! ```text
//! cargo run --release --example sp_optimization [procs]
//! ```

use ksr1_repro::core::time::cycles_to_seconds;
use ksr1_repro::machine::Machine;
use ksr1_repro::nas::{sp_sequential, SpConfig, SpLayout, SpSetup};

fn per_iter(cfg: SpConfig, procs: usize) -> f64 {
    let mut m = Machine::ksr1(64).expect("machine");
    let setup = SpSetup::new(&mut m, cfg, procs).expect("setup");
    let r = m.run(setup.programs()).expect("run");
    cycles_to_seconds(r.duration_cycles(), m.config().clock_hz) / cfg.iterations as f64
}

fn main() {
    let procs: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(8);
    assert!((1..=32).contains(&procs), "procs must be 1..=32");
    let base = SpConfig {
        n: 16,
        iterations: 2,
        seed: 424_242,
        layout: SpLayout::Base,
        prefetch: false,
        poststore: false,
    };
    // All variants compute the same answer; check once against the
    // sequential reference.
    let reference = sp_sequential(&base);
    let mut m = Machine::ksr1(64).expect("machine");
    let setup = SpSetup::new(&mut m, base, procs).expect("setup");
    m.run(setup.programs()).expect("run");
    let got = setup.solution(&mut m);
    assert!(
        got.iter()
            .zip(&reference)
            .all(|(a, b)| a.to_bits() == b.to_bits()),
        "parallel SP must match the sequential reference bitwise"
    );

    println!("SP 16^3, {procs} processors — the Table 4 ladder:\n");
    let t_base = per_iter(base, procs);
    let padded = SpConfig {
        layout: SpLayout::Padded,
        ..base
    };
    let t_padded = per_iter(padded, procs);
    let prefetch = SpConfig {
        prefetch: true,
        ..padded
    };
    let t_prefetch = per_iter(prefetch, procs);
    let poststore = SpConfig {
        poststore: true,
        ..prefetch
    };
    let t_poststore = per_iter(poststore, procs);
    let row = |label: &str, t: f64| {
        println!(
            "  {label:<30} {t:>9.5} s/iter   {:>+6.1}% vs base",
            (t / t_base - 1.0) * 100.0
        );
    };
    row("base (way-span aligned)", t_base);
    row("+ data padding/alignment", t_padded);
    row("+ prefetch", t_prefetch);
    row("+ poststore (don't!)", t_poststore);
    println!(
        "\npaper (64^3, 30 procs): 2.54 -> 2.14 -> 1.89 s/iter, and poststore made it \
         slower again — reproduced in shape above."
    );
}

//! Watch the slotted ring approach saturation — the architectural story
//! behind the paper's key conclusion ("the network does saturate when
//! there are simultaneous remote memory accesses from a fully populated
//! 32 node ring").
//!
//! Every processor hammers remote sub-pages back-to-back (each access a
//! compulsory miss served by its neighbour's cache). With few processors
//! the pipelined ring absorbs the load and latency stays at the published
//! ~175 cycles; as the population approaches 32 the 24 slots run out and
//! latency climbs.
//!
//! ```text
//! cargo run --release --example ring_saturation
//! ```

use ksr1_repro::machine::{program, Machine, SharedU64};

fn mean_remote_latency(procs: usize) -> f64 {
    let mut m = Machine::ksr1(3).expect("machine");
    let arrays: Vec<u64> = (0..procs)
        .map(|_| m.alloc(512 * 1024, 16384).expect("alloc"))
        .collect();
    let results = SharedU64::alloc(&mut m, procs).expect("alloc");
    for (p, &a) in arrays.iter().enumerate() {
        m.warm((p + 1) % 32, a, 512 * 1024); // data lives at the neighbour
    }
    let samples = 512u64;
    m.run(
        (0..procs)
            .map(|p| {
                let a = arrays[p];
                program(move |mut cpu| async move {
                    let t0 = cpu.now();
                    for i in 0..samples {
                        let _ = cpu.read_u64(a + (i * 128) % (512 * 1024)).await;
                    }
                    let mean = (cpu.now() - t0) / samples;
                    results.set(&mut cpu, p, mean).await;
                })
            })
            .collect(),
    )
    .expect("run");
    (0..procs)
        .map(|p| results.peek(&mut m, p) as f64)
        .sum::<f64>()
        / procs as f64
}

fn main() {
    println!("back-to-back remote reads, mean latency per access:\n");
    println!("{:>6} {:>12} {:>8}", "procs", "cycles", "vs idle");
    let base = mean_remote_latency(1);
    for procs in [1usize, 4, 8, 12, 16, 20, 24, 28, 32] {
        let l = mean_remote_latency(procs);
        let bar = "#".repeat(((l - 170.0) / 4.0).max(1.0) as usize);
        println!(
            "{procs:>6} {l:>12.1} {:>+7.1}%  {bar}",
            (l / base - 1.0) * 100.0
        );
    }
    println!(
        "\npublished idle remote latency: 175 cycles; the paper observed ~+8% at a \
         fully populated ring under measurement-loop duty cycles, and outright \
         saturation for back-to-back traffic like this (the IS kernel's phase 2)."
    );
}

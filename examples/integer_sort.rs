//! Run the seven-phase parallel Integer Sort on the simulated KSR-1 and
//! verify the result — a miniature of Table 2 / Figure 9.
//!
//! ```text
//! cargo run --release --example integer_sort
//! ```

use ksr1_repro::core::time::cycles_to_seconds;
use ksr1_repro::machine::Machine;
use ksr1_repro::nas::is::generate_keys;
use ksr1_repro::nas::{ranks_are_valid, IsConfig, IsSetup};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = IsConfig {
        keys: 1 << 14,
        max_key: 1 << 10,
        seed: 9,
        chunk: 128,
    };
    let keys = generate_keys(&cfg);
    println!(
        "sorting 2^{} keys over 2^{} buckets\n",
        cfg.keys.trailing_zeros(),
        cfg.max_key.trailing_zeros()
    );

    let mut t1 = None;
    for procs in [1usize, 2, 4, 8, 16] {
        let mut m = Machine::ksr1_scaled(2, 64)?;
        let setup = IsSetup::new(&mut m, cfg, procs)?;
        let report = m.run(setup.programs()).expect("run");
        let ranks = setup.ranks(&mut m);
        assert!(
            ranks_are_valid(&keys, &ranks),
            "rank array must be a bucket-sorted permutation"
        );
        let secs = cycles_to_seconds(report.duration_cycles(), m.config().clock_hz);
        let t1v = *t1.get_or_insert(secs);
        println!(
            "{procs:>2} procs: {secs:>8.4}s  speedup {:>5.2}  mean remote latency {:>6.1} cycles",
            t1v / secs,
            m.perfmon_total().mean_ring_latency()
        );
    }
    println!("\nranks verified valid at every processor count.");
    Ok(())
}

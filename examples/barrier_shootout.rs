//! Barrier shootout: measure the paper's nine barrier algorithms on the
//! simulated KSR-1 at a chosen processor count and print the ranking —
//! the single-column version of Figure 4.
//!
//! ```text
//! cargo run --release --example barrier_shootout [procs]
//! ```

use ksr1_repro::core::time::cycles_to_seconds;
use ksr1_repro::machine::{program, Machine};
use ksr1_repro::sync::{AnyBarrier, BarrierAlg, BarrierKind, Episode};

fn episode_us(kind: BarrierKind, procs: usize, episodes: usize) -> f64 {
    let mut m = Machine::ksr1(7).expect("machine");
    let b = AnyBarrier::alloc(kind, &mut m, procs).expect("barrier");
    let r = m
        .run(
            (0..procs)
                .map(|p| {
                    program(move |mut cpu| async move {
                        let mut ep = Episode::default();
                        for e in 0..episodes {
                            cpu.compute(((p * 89 + e * 37) % 200) as u64 + 20);
                            b.wait(&mut cpu, &mut ep).await;
                        }
                    })
                })
                .collect(),
        )
        .expect("run");
    cycles_to_seconds(r.duration_cycles() / episodes as u64, m.config().clock_hz) * 1e6
}

fn main() {
    let procs: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(16);
    assert!((2..=32).contains(&procs), "procs must be 2..=32");
    println!("barrier episode times on a 32-cell KSR-1, {procs} participating processors:\n");
    let mut rows: Vec<(f64, &str)> = BarrierKind::ALL
        .iter()
        .map(|&k| (episode_us(k, procs, 12), k.label()))
        .collect();
    rows.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite"));
    for (i, (t, label)) in rows.iter().enumerate() {
        println!("{:>2}. {:<14} {:8.1} us", i + 1, label, t);
    }
    println!(
        "\npaper (Figure 4): tournament(M) fastest, counter slowest, \
         System ~ tree(M), MCS ~ tournament."
    );
}

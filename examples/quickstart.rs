//! Quickstart: build a simulated 32-cell KSR-1, run a small parallel
//! program on it, and read the hardware performance monitor.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use ksr1_repro::machine::{program, Machine};
use ksr1_repro::sync::{BarrierAlg, Episode, HwLock, SystemBarrier};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 32-cell KSR-1: 20 MHz cells, 256 KB sub-caches, 32 MB local
    // caches, and the slotted pipelined unidirectional ring.
    let mut m = Machine::ksr1(42)?;

    // Shared state: a counter protected by the hardware exclusive lock
    // (get_sub_page / release_sub_page) and a library barrier.
    let procs = 8;
    let counter = m.alloc_subpage(8)?;
    let lock = HwLock::alloc(&mut m)?;
    let barrier = SystemBarrier::alloc(&mut m, procs)?;

    // One ordinary Rust closure per processor. Every shared-memory access
    // goes through the simulated cache hierarchy and ring.
    let report = m
        .run(
            (0..procs)
                .map(|p| {
                    program(move |mut cpu| async move {
                        for _ in 0..100 {
                            lock.acquire(&mut cpu).await;
                            let v = cpu.read_u64(counter).await;
                            cpu.write_u64(counter, v + 1).await;
                            lock.release(&mut cpu).await;
                            cpu.compute(500); // private work between sections
                        }
                        let mut ep = Episode::default();
                        barrier.wait(&mut cpu, &mut ep).await;
                        if p == 0 {
                            let v = cpu.read_u64(counter).await;
                            assert_eq!(v, 800, "every increment survived");
                        }
                    })
                })
                .collect(),
        )
        .expect("run");

    println!("final counter     : {}", m.peek_u64(counter).unwrap());
    println!(
        "virtual time      : {} cycles = {:.3} ms",
        report.duration_cycles(),
        report.seconds() * 1e3
    );
    let pm = m.perfmon_total();
    println!("sub-cache hits    : {}", pm.subcache_hits);
    println!("local-cache hits  : {}", pm.localcache_hits);
    println!("ring transactions : {}", pm.ring_transactions);
    println!(
        "mean ring latency : {:.1} cycles (published remote access: 175)",
        pm.mean_ring_latency()
    );
    Ok(())
}

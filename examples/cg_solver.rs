//! Run the CG kernel on the simulated KSR-1: verify the parallel run is
//! bitwise identical to the sequential reference, then show the speedup —
//! a miniature of Table 1.
//!
//! ```text
//! cargo run --release --example cg_solver
//! ```

use ksr1_repro::core::metrics::ScalingTable;
use ksr1_repro::core::time::cycles_to_seconds;
use ksr1_repro::machine::Machine;
use ksr1_repro::nas::{cg_sequential, CgConfig, CgSetup};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Density matters: the paper's matrix has ~145 entries per row, which
    // keeps the serial vector operations small next to the mat-vec.
    let cfg = CgConfig {
        n: 700,
        offdiag_per_row: 72,
        iterations: 4,
        seed: 7_000,
        poststore: false,
        uncache_matrix: false,
    };
    let reference = cg_sequential(&cfg);
    println!(
        "sequential reference: checksum {:.6}, residual^2 {:.3e}\n",
        reference.x_checksum, reference.residual_sq
    );

    let mut rows = Vec::new();
    for procs in [1usize, 2, 4, 8] {
        // A fresh cache-scaled machine per configuration, like a fresh
        // batch job on the real machine.
        let mut m = Machine::ksr1_scaled(1, 64)?;
        let setup = CgSetup::new(&mut m, cfg, procs)?;
        let report = m.run(setup.programs()).expect("run");
        let result = setup.result(&mut m);
        assert_eq!(
            result.x_checksum.to_bits(),
            reference.x_checksum.to_bits(),
            "parallel CG must match the sequential reference bitwise"
        );
        rows.push((
            procs,
            cycles_to_seconds(report.duration_cycles(), m.config().clock_hz),
        ));
        println!(
            "{procs:>2} procs: {:>9.4}s simulated, ring transactions: {}",
            rows.last().unwrap().1,
            m.perfmon_total().ring_transactions
        );
    }
    println!();
    println!(
        "{}",
        ScalingTable::from_times(&rows).render("CG scaling (verified bitwise)")
    );
    Ok(())
}

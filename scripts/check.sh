#!/usr/bin/env bash
# Repo-wide gate: formatting, lints, tests, a quick end-to-end run of
# every registered experiment, and the parallel-executor determinism
# gate. Run from the repo root before pushing.
#
# Quick-mode runs land in throwaway directories so the full-sweep
# baselines under results/ are never overwritten; the only files this
# script refreshes there are results/timings.json and results/bench.json
# (wall-clock times are nondeterministic by nature and excluded from
# every byte comparison).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test --workspace --release"
cargo test --workspace --release --quiet

tmp_serial=$(mktemp -d)
tmp_parallel=$(mktemp -d)
tmp_cache=$(mktemp -d)
tmp_warm=$(mktemp -d)
tmp_shard_cache=$(mktemp -d)
tmp_join=$(mktemp -d)
tmp_warm2=$(mktemp -d)
tmp_check=$(mktemp -d)
tmp_check_net=$(mktemp -d)
tmp_check_lck=$(mktemp -d)
trap 'rm -rf "$tmp_serial" "$tmp_parallel" "$tmp_cache" "$tmp_warm" "$tmp_warm2" \
    "$tmp_shard_cache" "$tmp_join" "$tmp_check" "$tmp_check_net" "$tmp_check_lck"' EXIT

# Compare every artifact of two result dirs, excluding the wall-clock
# files (timings.json, bench.json — legitimately nondeterministic).
compare_dirs() {
    local ref="$1" other="$2" why="$3" name
    for f in "$ref"/*; do
        name=$(basename "$f")
        case "$name" in
        timings.json | bench.json) continue ;;
        esac
        if ! cmp -s "$f" "$other/$name"; then
            echo "determinism violation: $name differs ($why)" >&2
            exit 1
        fi
    done
}

# The hit/miss counters a cached run records in timings.json.
cache_counter() {
    sed -n 's/.*"'"$2"'": *\([0-9][0-9]*\).*/\1/p' "$1/timings.json" | head -n 1
}

echo "==> determinism gate: quick run_all at -j1 vs -j8 (byte-compare; -j8 populates a cache)"
KSR_QUICK=1 cargo run --quiet --release -p ksr-bench --bin run_all -- \
    --jobs 1 --results "$tmp_serial" > "$tmp_serial/stdout.txt"
KSR_QUICK=1 cargo run --quiet --release -p ksr-bench --bin run_all -- \
    --jobs 8 --cache "$tmp_cache" --results "$tmp_parallel" > "$tmp_parallel/stdout.txt"
compare_dirs "$tmp_serial" "$tmp_parallel" "between -j1 and -j8"

echo "==> cache gate: warm re-run must execute zero jobs and byte-match"
KSR_QUICK=1 cargo run --quiet --release -p ksr-bench --bin run_all -- \
    --jobs 8 --cache "$tmp_cache" --results "$tmp_warm" > "$tmp_warm/stdout.txt"
compare_dirs "$tmp_serial" "$tmp_warm" "between a cold and a warm cached run"
warm_hits=$(cache_counter "$tmp_warm" hits)
warm_misses=$(cache_counter "$tmp_warm" misses)
warm_total=$(cache_counter "$tmp_warm" total_jobs)
if [ "$warm_misses" != 0 ] || [ "$warm_hits" != "$warm_total" ]; then
    echo "cache gate: warm run executed jobs (hits $warm_hits, misses $warm_misses, total $warm_total)" >&2
    exit 1
fi

echo "==> prune gate: --prune drops dead entries and keeps every live one"
# Plant a corrupt entry; --prune must remove it and only it, and a
# post-prune warm run must still execute zero jobs (no live entry lost).
echo 'not a cache entry' > "$tmp_cache/deadbeefdeadbeefdeadbeefdeadbeef.json"
KSR_QUICK=1 cargo run --quiet --release -p ksr-bench --bin run_all -- \
    --cache "$tmp_cache" --prune
if [ -e "$tmp_cache/deadbeefdeadbeefdeadbeefdeadbeef.json" ]; then
    echo "prune gate: corrupt entry survived --prune" >&2
    exit 1
fi
KSR_QUICK=1 cargo run --quiet --release -p ksr-bench --bin run_all -- \
    --jobs 8 --cache "$tmp_cache" --results "$tmp_warm2" > "$tmp_warm2/stdout.txt"
compare_dirs "$tmp_serial" "$tmp_warm2" "between a warm run and a post-prune warm run"
pruned_misses=$(cache_counter "$tmp_warm2" misses)
if [ "$pruned_misses" != 0 ]; then
    echo "prune gate: --prune deleted live entries ($pruned_misses post-prune misses)" >&2
    exit 1
fi

echo "==> shard gate: --shard 1/2 + --shard 2/2 + --join must byte-match the unsharded run"
KSR_QUICK=1 cargo run --quiet --release -p ksr-bench --bin run_all -- \
    --jobs 8 --cache "$tmp_shard_cache" --shard 1/2 --results "$tmp_join" > /dev/null
KSR_QUICK=1 cargo run --quiet --release -p ksr-bench --bin run_all -- \
    --jobs 8 --cache "$tmp_shard_cache" --shard 2/2 --results "$tmp_join" > /dev/null
KSR_QUICK=1 cargo run --quiet --release -p ksr-bench --bin run_all -- \
    --jobs 8 --cache "$tmp_shard_cache" --join --results "$tmp_join" > "$tmp_join/stdout.txt"
join_misses=$(cache_counter "$tmp_join" misses)
if [ "$join_misses" != 0 ]; then
    echo "shard gate: the join had to execute $join_misses job(s) the shards should have covered" >&2
    exit 1
fi
compare_dirs "$tmp_serial" "$tmp_join" "between an unsharded run and shard 1/2 + 2/2 + --join"

echo "==> recording per-experiment wall times in results/timings.json"
mkdir -p results
cp "$tmp_parallel/timings.json" results/timings.json

echo "==> perf gate: microworkload minima vs committed results/bench.json (>10% fails)"
# Wall-clock numbers for the coordinator hot path; like timings.json,
# bench.json is nondeterministic and excluded from byte comparisons.
# The gate fails on any case regressing more than 10% (and 50ms) over
# the committed minima and leaves bench.json untouched so it stays red;
# on a pass the fresh report refreshes bench.json. Trajectory entries
# with before/after per optimization PR live in the repo-root
# BENCH_<n>.json files.
cargo run --quiet --release -p ksr-bench --bin perf -- \
    --reps 3 --results results --gate results/bench.json

echo "==> run_all --check --quick (coherence + race + predictive + lint verification)"
# Exits non-zero on any coherence violation, data race, predictive
# finding, or schedule lint; the full report lands in violations.json.
cargo run --quiet --release -p ksr-bench --bin run_all -- \
    --check --quick --results "$tmp_check" > "$tmp_check/stdout.txt"

echo "==> run_all --check --quick --only LAD,SCB,CMB (interconnect surface under the checker)"
# The N-level LCA routing and ARD-combining experiments exercise shadow
# state the checker models specially (merged GetSubPage/ReadData grants);
# gate them explicitly so a combining regression can't hide behind the
# aggregate run.
cargo run --quiet --release -p ksr-bench --bin run_all -- \
    --check --quick --only LAD,SCB,CMB --results "$tmp_check_net" > "$tmp_check_net/stdout.txt"

echo "==> run_all --check --quick --only LCK (hierarchical cohort locks under the checker)"
# The cohort lock keeps all queue state on gsp'd or head-spun sub-pages
# and never holds two gsp sub-pages at once; gate it explicitly so a
# lockset or lock-order regression in the hierarchy can't hide behind
# the aggregate run.
cargo run --quiet --release -p ksr-bench --bin run_all -- \
    --check --quick --only LCK --results "$tmp_check_lck" > "$tmp_check_lck/stdout.txt"

echo "==> all checks passed"

#!/usr/bin/env bash
# Repo-wide gate: formatting, lints, tests, and a quick end-to-end run of
# every registered experiment. Run from the repo root before pushing.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test --workspace --release"
cargo test --workspace --release --quiet

echo "==> KSR_QUICK=1 run_all (end-to-end pipeline)"
KSR_QUICK=1 cargo run --quiet --release -p ksr-bench --bin run_all

echo "==> run_all --check --quick (coherence + race + lint verification)"
# Exits non-zero on any coherence violation, data race, or schedule lint
# finding; the full report lands in results/violations.json.
cargo run --quiet --release -p ksr-bench --bin run_all -- --check --quick

echo "==> all checks passed"

#!/usr/bin/env bash
# Repo-wide gate: formatting, lints, tests, a quick end-to-end run of
# every registered experiment, and the parallel-executor determinism
# gate. Run from the repo root before pushing.
#
# Quick-mode runs land in throwaway directories so the full-sweep
# baselines under results/ are never overwritten; the only files this
# script refreshes there are results/timings.json and results/bench.json
# (wall-clock times are nondeterministic by nature and excluded from
# every byte comparison).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test --workspace --release"
cargo test --workspace --release --quiet

tmp_serial=$(mktemp -d)
tmp_parallel=$(mktemp -d)
tmp_check=$(mktemp -d)
tmp_check_net=$(mktemp -d)
trap 'rm -rf "$tmp_serial" "$tmp_parallel" "$tmp_check" "$tmp_check_net"' EXIT

echo "==> determinism gate: quick run_all at -j1 vs -j8 (byte-compare)"
KSR_QUICK=1 cargo run --quiet --release -p ksr-bench --bin run_all -- \
    --jobs 1 --results "$tmp_serial" > "$tmp_serial/stdout.txt"
KSR_QUICK=1 cargo run --quiet --release -p ksr-bench --bin run_all -- \
    --jobs 8 --results "$tmp_parallel" > "$tmp_parallel/stdout.txt"
for f in "$tmp_serial"/*; do
    name=$(basename "$f")
    case "$name" in
    timings.json | bench.json)
        continue # wall-clock times: the legitimately nondeterministic files
        ;;
    esac
    if ! cmp -s "$f" "$tmp_parallel/$name"; then
        echo "determinism violation: $name differs between -j1 and -j8" >&2
        exit 1
    fi
done

echo "==> recording per-experiment wall times in results/timings.json"
mkdir -p results
cp "$tmp_parallel/timings.json" results/timings.json

echo "==> perf gate: microworkload minima vs committed results/bench.json (>10% fails)"
# Wall-clock numbers for the coordinator hot path; like timings.json,
# bench.json is nondeterministic and excluded from byte comparisons.
# The gate fails on any case regressing more than 10% (and 50ms) over
# the committed minima and leaves bench.json untouched so it stays red;
# on a pass the fresh report refreshes bench.json. Trajectory entries
# with before/after per optimization PR live in the repo-root
# BENCH_<n>.json files.
cargo run --quiet --release -p ksr-bench --bin perf -- \
    --reps 3 --results results --gate results/bench.json

echo "==> run_all --check --quick (coherence + race + predictive + lint verification)"
# Exits non-zero on any coherence violation, data race, predictive
# finding, or schedule lint; the full report lands in violations.json.
cargo run --quiet --release -p ksr-bench --bin run_all -- \
    --check --quick --results "$tmp_check" > "$tmp_check/stdout.txt"

echo "==> run_all --check --quick --only LAD,SCB,CMB (interconnect surface under the checker)"
# The N-level LCA routing and ARD-combining experiments exercise shadow
# state the checker models specially (merged GetSubPage/ReadData grants);
# gate them explicitly so a combining regression can't hide behind the
# aggregate run.
cargo run --quiet --release -p ksr-bench --bin run_all -- \
    --check --quick --only LAD,SCB,CMB --results "$tmp_check_net" > "$tmp_check_net/stdout.txt"

echo "==> all checks passed"

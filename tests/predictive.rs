//! Predictive-analysis and schedule-exploration validation, end to end
//! through the umbrella crate:
//!
//! * the lock-order graph must predict the seeded inversion's potential
//!   deadlock from its *clean* default-schedule trace, and stay silent
//!   on a correctly disciplined ticket-lock kernel;
//! * the small-scope explorer must find a witness schedule for every
//!   seeded mutant and clear both control scenarios' full spaces;
//! * a multi-level ring machine with ARD combining enabled must check
//!   clean (coherence + races + lock order) while actually merging
//!   packets — the emission contract for combined grants.

use ksr1_repro::bench::explore_exp::{budget, explore_scenario, run_one, Scenario};
use ksr1_repro::core::trace::{TraceEvent, Tracer};
use ksr1_repro::machine::{program, Machine, MachineConfig, Program};
use ksr1_repro::net::{RingHierarchyConfig, Topology};
use ksr1_repro::sync::mutants::LockOrderMutant;
use ksr1_repro::sync::{LockMode, SwRwLock};
use ksr1_repro::verify::{
    lockset_analysis, CheckingSink, CollectingSink, LockOrderGraph, PredictRule, RaceDetector,
};

/// Trace a workload on a fresh 32-cell KSR-1 and hand back the events.
fn trace_on_ksr1(
    seed: u64,
    build: impl FnOnce(&mut Machine) -> Vec<Box<dyn Program>>,
) -> Vec<TraceEvent> {
    let mut m = Machine::ksr1(seed).expect("machine");
    let (tracer, sink) = Tracer::attach(CollectingSink::new());
    m.set_tracer(tracer);
    let programs = build(&mut m);
    m.run(programs).expect("run");
    let events = sink.lock().expect("sink").take();
    assert!(!events.is_empty(), "the workload must produce a trace");
    events
}

#[test]
fn lock_order_inversion_is_predicted_from_a_clean_trace() {
    let events = trace_on_ksr1(21, |m| LockOrderMutant::alloc(m).expect("alloc").programs());
    let mut graph = LockOrderGraph::new();
    graph.ingest(&events);
    let findings = graph.findings();
    assert!(
        findings
            .iter()
            .any(|f| f.rule == PredictRule::PotentialDeadlock),
        "opposite-order nesting must be flagged even though nobody deadlocked: {findings:?}"
    );
}

#[test]
fn ticket_lock_kernel_is_silent_in_the_lock_order_graph() {
    // Four processors bump a shared counter under the paper's software
    // read/write ticket lock, with interleaved readers — disciplined
    // locking, no nesting, nothing for the deadlock predictor to say.
    let events = trace_on_ksr1(22, |m| {
        let lock = SwRwLock::alloc(m).expect("alloc");
        let counter = m.alloc_subpage(8).expect("alloc");
        (0..4)
            .map(|p| {
                program(move |mut cpu| async move {
                    for i in 0..3u64 {
                        let t = cpu.id() as u64 * 17 + i * 29;
                        cpu.compute(t % 101);
                        let ticket = lock.acquire(&mut cpu, LockMode::Write).await;
                        let v = cpu.read_u64(counter).await;
                        cpu.write_u64(counter, v + 1).await;
                        lock.release(&mut cpu, ticket).await;
                        if p % 2 == 0 {
                            let ticket = lock.acquire(&mut cpu, LockMode::Read).await;
                            let _ = cpu.read_u64(counter).await;
                            lock.release(&mut cpu, ticket).await;
                        }
                    }
                })
            })
            .collect()
    });
    let mut graph = LockOrderGraph::new();
    graph.ingest(&events);
    assert!(
        graph.is_clean(),
        "disciplined ticket locking must stay silent: {:?}",
        graph.findings()
    );
}

#[test]
fn explorer_clears_both_control_scenarios() {
    for s in [Scenario::CleanCounter, Scenario::CleanHandoff] {
        let rep = explore_scenario(s, 31, budget(true));
        assert!(
            rep.is_clean(),
            "{}: the whole schedule space must be clean: {:?}",
            s.label(),
            rep.violations
        );
        assert!(!rep.truncated, "{}: space must fit the budget", s.label());
        assert!(rep.runs >= 2, "{}: the guard tie must branch", s.label());
    }
}

#[test]
fn explorer_finds_a_witness_for_every_seeded_mutant() {
    let expected: [(Scenario, &str); 3] = [
        (Scenario::MissedInvalidation, "coherence"),
        (Scenario::LockOrder, "invariant"),
        (Scenario::RacyHandoff, "invariant"),
    ];
    for (s, kind) in expected {
        let rep = explore_scenario(s, 31, budget(true));
        assert!(!rep.truncated, "{}: space must fit the budget", s.label());
        let witness = rep
            .violations
            .iter()
            .find(|v| v.kind == kind)
            .unwrap_or_else(|| panic!("{}: no {kind} witness in {:?}", s.label(), rep.violations));
        assert!(
            !witness.schedule.is_empty(),
            "{}: the default schedule is clean, so the witness must flip a tie",
            s.label()
        );
        // The witness schedule must reproduce its violation on replay.
        let again = run_one(s, 31, &witness.schedule);
        assert!(
            again
                .violations
                .iter()
                .any(|(k, w)| k == &witness.kind && w == &witness.what),
            "{}: witness replay lost the violation: {:?}",
            s.label(),
            again.violations
        );
    }
}

#[test]
fn combining_machine_checks_clean_while_merging_grants() {
    // A three-level ring tree (4 cells per leaf, 16 cells total) with
    // ARD combining on: every cell hammers one hot counter. The merged
    // GetSubPage/ReadData grants must leave a trace the coherence
    // checker, the race detector, and the lock-order graph all accept,
    // while the fabric actually absorbs packets in the ARDs.
    let spec: &[usize] = &[4, 2, 2];
    let mut cfg = MachineConfig::ksr_ring(97, spec);
    let mut ring = RingHierarchyConfig::ring_levels(spec);
    ring.combining = true;
    cfg.topology = Topology::ring(ring);
    let mut m = Machine::new(cfg).expect("machine");
    let (tracer, sink) = Tracer::attach(CollectingSink::new());
    m.set_tracer(tracer);
    let procs = m.config().cells;
    let hot = m.alloc_subpage(8).expect("alloc");
    let programs: Vec<Box<dyn Program>> = (0..procs)
        .map(|p| {
            program(move |mut cpu| async move {
                for i in 0..8usize {
                    cpu.compute(((p * 13 + i * 7) % 50) as u64 + 5);
                    cpu.fetch_add(hot, 1).await;
                }
            })
        })
        .collect();
    m.run(programs).expect("run");
    assert_eq!(m.peek_u64(hot).expect("counter"), (procs * 8) as u64);
    assert!(
        m.combined_packets() > 0,
        "the hot spot must exercise ARD combining"
    );

    let events = sink.lock().expect("sink").take();
    let mut checker = CheckingSink::default();
    for ev in &events {
        use ksr1_repro::core::trace::TraceSink;
        checker.record(ev);
    }
    assert!(
        checker.is_clean(),
        "combined grants broke the coherence trace: {:?}",
        checker.violations()
    );
    let races = RaceDetector::new(procs).analyze(&events);
    assert!(
        races.is_empty(),
        "fetch-add hot spot is race-free: {races:?}"
    );
    let mut graph = LockOrderGraph::new();
    graph.ingest(&events);
    assert!(graph.is_clean(), "{:?}", graph.findings());
    assert!(
        lockset_analysis(&events).is_empty(),
        "atomic RMWs never leave an empty lockset"
    );
}

//! Property-based tests of the coherence protocol and the machine layer.
//!
//! These drive randomized operation soups through the full stack and check
//! the invariants the ALLCACHE hardware guarantees:
//!
//! * at most one writable copy of any sub-page, never alongside readers;
//! * sequential consistency of the committed values (an atomic counter
//!   incremented under `get_sub_page` never loses updates);
//! * barrier safety under arbitrary arrival skews;
//! * determinism of the whole simulation for a fixed seed.

use ksr1_repro::machine::{program, Cpu, Machine};
use ksr1_repro::mem::{CacheTiming, MemGeometry, MemOp, MemorySystem, Outcome};
use ksr1_repro::net::Fabric;
use ksr1_repro::sync::{AnyBarrier, BarrierAlg, BarrierKind, Episode};
use proptest::prelude::*;

/// A compact encoding of a memory operation for the soup.
#[derive(Debug, Clone, Copy)]
enum SoupOp {
    Read(u8),
    Write(u8, u64),
    Gsp(u8),
    Release(u8),
    Prefetch(u8, bool),
    Poststore(u8),
}

fn soup_op() -> impl Strategy<Value = SoupOp> {
    prop_oneof![
        any::<u8>().prop_map(SoupOp::Read),
        (any::<u8>(), any::<u64>()).prop_map(|(a, v)| SoupOp::Write(a, v)),
        any::<u8>().prop_map(SoupOp::Gsp),
        any::<u8>().prop_map(SoupOp::Release),
        (any::<u8>(), any::<bool>()).prop_map(|(a, e)| SoupOp::Prefetch(a, e)),
        any::<u8>().prop_map(SoupOp::Poststore),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Direct protocol-level soup: no sequence of operations from any
    /// interleaving of cells may ever violate the single-writer invariant
    /// or wedge the directory.
    #[test]
    fn protocol_soup_never_violates_single_writer(
        ops in proptest::collection::vec((0usize..4, soup_op()), 1..200),
        seed in any::<u64>(),
    ) {
        let mut mem = MemorySystem::new(
            MemGeometry::scaled(64),
            CacheTiming::ksr1(),
            Fabric::ksr1_32().unwrap(),
            4,
            seed,
        )
        .unwrap();
        let mut now = 0u64;
        // Track which cell holds which sub-page atomically so the soup
        // stays well-formed (release only what you hold).
        let mut held: [Option<u64>; 4] = [None; 4];
        for (cell, op) in ops {
            let addr = |a: u8| 128 * u64::from(a) + 8;
            now += 50;
            match op {
                SoupOp::Read(a) => {
                    let _ = mem.access(cell, addr(a), MemOp::Read, now);
                }
                SoupOp::Write(a, _v) => {
                    let _ = mem.access(cell, addr(a), MemOp::Write, now);
                }
                SoupOp::Gsp(a) => {
                    if held[cell].is_none() {
                        if let Outcome::Done { .. } =
                            mem.access(cell, addr(a), MemOp::GetSubPage, now)
                        {
                            held[cell] = Some(addr(a));
                        }
                    }
                }
                SoupOp::Release(_) => {
                    if let Some(h) = held[cell].take() {
                        let _ = mem.access(cell, h, MemOp::ReleaseSubPage, now);
                    }
                }
                SoupOp::Prefetch(a, e) => {
                    let _ = mem.access(cell, addr(a), MemOp::Prefetch { exclusive: e }, now);
                }
                SoupOp::Poststore(a) => {
                    let _ = mem.access(cell, addr(a), MemOp::Poststore, now);
                }
            }
            prop_assert_eq!(mem.directory().find_violation(), None);
        }
    }

    /// Machine-level: a shared counter incremented under `get_sub_page`
    /// with arbitrary compute skews never loses an update.
    #[test]
    fn atomic_counter_exact_under_random_skews(
        skews in proptest::collection::vec(0u64..2_000, 2..8),
        iters in 1usize..8,
        seed in any::<u64>(),
    ) {
        let mut m = Machine::ksr1(seed).unwrap();
        let a = m.alloc_subpage(8).unwrap();
        let procs = skews.len();
        m.run(
            skews
                .iter()
                .map(|&skew| {
                    program(move |cpu: &mut Cpu| {
                        cpu.compute(skew + 1);
                        for _ in 0..iters {
                            cpu.acquire_sub_page(a);
                            let v = cpu.read_u64(a);
                            cpu.write_u64(a, v + 1);
                            cpu.release_sub_page(a);
                        }
                    })
                })
                .collect(),
        );
        prop_assert_eq!(m.peek_u64(a), (procs * iters) as u64);
    }

    /// Every barrier kind is safe under arbitrary arrival skews: nobody
    /// leaves episode e before everyone entered episode e.
    #[test]
    fn barriers_safe_under_random_skews(
        skews in proptest::collection::vec(0u64..3_000, 2..7),
        kind_idx in 0usize..BarrierKind::ALL.len(),
        seed in any::<u64>(),
    ) {
        let kind = BarrierKind::ALL[kind_idx];
        let procs = skews.len();
        let mut m = Machine::ksr1(seed).unwrap();
        let b = AnyBarrier::alloc(kind, &mut m, procs).unwrap();
        let marks: Vec<u64> = (0..procs).map(|_| m.alloc_subpage(8).unwrap()).collect();
        let all = marks.clone();
        m.run(
            (0..procs)
                .map(|p| {
                    let my = marks[p];
                    let all = all.clone();
                    let skew = skews[p];
                    program(move |cpu: &mut Cpu| {
                        let mut ep = Episode::default();
                        for e in 0..2u64 {
                            cpu.compute(skew * (e + 1) + 1);
                            cpu.write_u64(my, e + 1);
                            b.wait(cpu, &mut ep);
                            for &other in &all {
                                let v = cpu.read_u64(other);
                                assert!(v >= e + 1, "{} escaped early", kind_idx);
                            }
                        }
                    })
                })
                .collect(),
        );
    }

    /// Fixed seed => identical virtual-time history, independent of host
    /// thread scheduling.
    #[test]
    fn simulation_is_deterministic(seed in any::<u64>(), procs in 2usize..6) {
        let run = || {
            let mut m = Machine::ksr1(seed).unwrap();
            let a = m.alloc_subpage(16).unwrap();
            let r = m.run(
                (0..procs)
                    .map(|p| {
                        program(move |cpu: &mut Cpu| {
                            for i in 0..10u64 {
                                if (i + p as u64) % 3 == 0 {
                                    cpu.fetch_add(a, 1);
                                } else {
                                    let _ = cpu.read_u64(a + 8);
                                    cpu.compute(30);
                                }
                            }
                        })
                    })
                    .collect(),
            );
            (r.finished_at, r.proc_end.clone())
        };
        prop_assert_eq!(run(), run());
    }
}

//! Randomized (but fully deterministic) tests of the coherence protocol
//! and the machine layer.
//!
//! These drive seeded operation soups through the full stack and check
//! the invariants the ALLCACHE hardware guarantees:
//!
//! * at most one writable copy of any sub-page, never alongside readers;
//! * sequential consistency of the committed values (an atomic counter
//!   incremented under `get_sub_page` never loses updates);
//! * barrier safety under arbitrary arrival skews;
//! * determinism of the whole simulation for a fixed seed.
//!
//! The cases are generated with the in-tree [`XorShift64`] generator
//! instead of an external property-testing crate, so the registry-free
//! build stays offline while the coverage stays randomized: every run
//! explores the same seeded family of schedules.

use ksr1_repro::core::XorShift64;
use ksr1_repro::machine::{program, Machine};
use ksr1_repro::mem::{CacheTiming, MemGeometry, MemOp, MemorySystem, Outcome};
use ksr1_repro::net::Fabric;
use ksr1_repro::sync::{AnyBarrier, BarrierAlg, BarrierKind, Episode};

/// A compact encoding of a memory operation for the soup.
#[derive(Debug, Clone, Copy)]
enum SoupOp {
    Read(u8),
    Write(u8),
    Gsp(u8),
    Release,
    Prefetch(u8, bool),
    Poststore(u8),
}

fn soup_op(rng: &mut XorShift64) -> SoupOp {
    let a = rng.next_u64() as u8;
    match rng.next_index(6) {
        0 => SoupOp::Read(a),
        1 => SoupOp::Write(a),
        2 => SoupOp::Gsp(a),
        3 => SoupOp::Release,
        4 => SoupOp::Prefetch(a, rng.next_bool(0.5)),
        _ => SoupOp::Poststore(a),
    }
}

/// Direct protocol-level soup: no sequence of operations from any
/// interleaving of cells may ever violate the single-writer invariant
/// or wedge the directory.
#[test]
fn protocol_soup_never_violates_single_writer() {
    for case in 0..64u64 {
        let mut rng = XorShift64::new(0xC0FFEE ^ case);
        let seed = rng.next_u64();
        let n_ops = 1 + rng.next_index(199);
        let mut mem = MemorySystem::new(
            MemGeometry::scaled(64),
            CacheTiming::ksr1(),
            Fabric::ksr1_32().unwrap(),
            4,
            seed,
        )
        .unwrap();
        let mut now = 0u64;
        // Track which cell holds which sub-page atomically so the soup
        // stays well-formed (release only what you hold).
        let mut held: [Option<u64>; 4] = [None; 4];
        for _ in 0..n_ops {
            let cell = rng.next_index(4);
            let op = soup_op(&mut rng);
            let addr = |a: u8| 128 * u64::from(a) + 8;
            now += 50;
            match op {
                SoupOp::Read(a) => {
                    let _ = mem.access(cell, addr(a), MemOp::Read, now);
                }
                SoupOp::Write(a) => {
                    let _ = mem.access(cell, addr(a), MemOp::Write, now);
                }
                SoupOp::Gsp(a) => {
                    if held[cell].is_none() {
                        if let Outcome::Done { .. } =
                            mem.access(cell, addr(a), MemOp::GetSubPage, now)
                        {
                            held[cell] = Some(addr(a));
                        }
                    }
                }
                SoupOp::Release => {
                    if let Some(h) = held[cell].take() {
                        let _ = mem.access(cell, h, MemOp::ReleaseSubPage, now);
                    }
                }
                SoupOp::Prefetch(a, e) => {
                    let _ = mem.access(cell, addr(a), MemOp::Prefetch { exclusive: e }, now);
                }
                SoupOp::Poststore(a) => {
                    let _ = mem.access(cell, addr(a), MemOp::Poststore, now);
                }
            }
            assert_eq!(mem.directory().find_violation(), None, "case {case}");
        }
    }
}

/// Machine-level: a shared counter incremented under `get_sub_page` with
/// arbitrary compute skews never loses an update.
#[test]
fn atomic_counter_exact_under_random_skews() {
    for case in 0..12u64 {
        let mut rng = XorShift64::new(0xBEEF ^ (case << 8));
        let seed = rng.next_u64();
        let procs = 2 + rng.next_index(6);
        let skews: Vec<u64> = (0..procs).map(|_| rng.next_below(2_000)).collect();
        let iters = 1 + rng.next_index(7);
        let mut m = Machine::ksr1(seed).unwrap();
        let a = m.alloc_subpage(8).unwrap();
        m.run(
            skews
                .iter()
                .map(|&skew| {
                    program(move |mut cpu| async move {
                        cpu.compute(skew + 1);
                        for _ in 0..iters {
                            cpu.acquire_sub_page(a).await;
                            let v = cpu.read_u64(a).await;
                            cpu.write_u64(a, v + 1).await;
                            cpu.release_sub_page(a).await;
                        }
                    })
                })
                .collect(),
        )
        .expect("run");
        assert_eq!(
            m.peek_u64(a).unwrap(),
            (procs * iters) as u64,
            "case {case}"
        );
    }
}

/// Every barrier kind is safe under arbitrary arrival skews: nobody
/// leaves episode e before everyone entered episode e.
#[test]
fn barriers_safe_under_random_skews() {
    for (kind_idx, &kind) in BarrierKind::ALL.iter().enumerate() {
        let mut rng = XorShift64::new(0xBA55 ^ (kind_idx as u64) << 16);
        let seed = rng.next_u64();
        let procs = 2 + rng.next_index(5);
        let skews: Vec<u64> = (0..procs).map(|_| rng.next_below(3_000)).collect();
        let mut m = Machine::ksr1(seed).unwrap();
        let b = AnyBarrier::alloc(kind, &mut m, procs).unwrap();
        let marks: Vec<u64> = (0..procs).map(|_| m.alloc_subpage(8).unwrap()).collect();
        let all = marks.clone();
        m.run(
            (0..procs)
                .map(|p| {
                    let my = marks[p];
                    let all = all.clone();
                    let skew = skews[p];
                    program(move |mut cpu| async move {
                        let mut ep = Episode::default();
                        for e in 0..2u64 {
                            cpu.compute(skew * (e + 1) + 1);
                            cpu.write_u64(my, e + 1).await;
                            b.wait(&mut cpu, &mut ep).await;
                            for &other in &all {
                                let v = cpu.read_u64(other).await;
                                assert!(v > e, "{} escaped early", kind_idx);
                            }
                        }
                    })
                })
                .collect(),
        )
        .expect("run");
    }
}

/// Fixed seed => identical virtual-time history, independent of host
/// thread scheduling.
#[test]
fn simulation_is_deterministic() {
    for case in 0..6u64 {
        let mut rng = XorShift64::new(0xD17E ^ case);
        let seed = rng.next_u64();
        let procs = 2 + rng.next_index(4);
        let run = || {
            let mut m = Machine::ksr1(seed).unwrap();
            let a = m.alloc_subpage(16).unwrap();
            let r = m
                .run(
                    (0..procs)
                        .map(|p| {
                            program(move |mut cpu| async move {
                                for i in 0..10u64 {
                                    if (i + p as u64).is_multiple_of(3) {
                                        cpu.fetch_add(a, 1).await;
                                    } else {
                                        let _ = cpu.read_u64(a + 8).await;
                                        cpu.compute(30);
                                    }
                                }
                            })
                        })
                        .collect(),
                )
                .expect("run");
            (r.finished_at, r.proc_end.clone())
        };
        assert_eq!(run(), run(), "case {case}");
    }
}

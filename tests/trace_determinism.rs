//! Tracing must be observational: attaching a sink may not perturb one
//! cycle of the simulation, and the machine must report identical
//! virtual-time results with tracing on or off.

use ksr_core::trace::{TraceKind, Tracer};
use ksr_machine::{program, Machine, PerfSnapshot, Program};
use ksr_sync::{AnyBarrier, BarrierAlg, BarrierKind, Episode};

const PROCS: usize = 8;
const ROUNDS: usize = 4;

struct RunOutcome {
    duration_cycles: u64,
    perfmon: ksr_mem::PerfMon,
    fabric: ksr_net::FabricStats,
    snapshot: PerfSnapshot,
}

/// A workload touching every traced subsystem: ring transactions,
/// coherence transitions, the synthesized fetch-add (atomic sub-page
/// acquisition, hence rejections under contention), barrier episodes,
/// and coordinator wake-ups.
fn run_workload(tracer: Option<Tracer>) -> RunOutcome {
    let mut m = Machine::ksr1(42).expect("machine");
    if let Some(t) = tracer {
        m.set_tracer(t);
    }
    let counter = m.alloc(128, 128).expect("alloc");
    let b = AnyBarrier::alloc(BarrierKind::Mcs, &mut m, PROCS).expect("barrier");
    let programs: Vec<Box<dyn Program>> = (0..PROCS)
        .map(|p| {
            program(move |mut cpu| async move {
                let mut ep = Episode::default();
                for round in 0..ROUNDS {
                    cpu.compute(((p * 61 + round * 17) % 97) as u64 + 5);
                    cpu.fetch_add(counter, 1).await;
                    b.wait(&mut cpu, &mut ep).await;
                }
            })
        })
        .collect();
    let r = m.run(programs).expect("run");
    RunOutcome {
        duration_cycles: r.duration_cycles(),
        perfmon: m.perfmon_total(),
        fabric: m.fabric_stats(),
        snapshot: m.perfmon_snapshot(),
    }
}

#[test]
fn tracing_does_not_change_the_simulation() {
    let off = run_workload(None);
    let (tracer, counts) = Tracer::counting();
    let on = run_workload(Some(tracer));

    assert_eq!(
        off.duration_cycles, on.duration_cycles,
        "attaching a tracer changed the run's virtual time"
    );
    assert_eq!(
        off.perfmon, on.perfmon,
        "tracing perturbed the hardware counters"
    );
    assert_eq!(
        off.fabric, on.fabric,
        "tracing perturbed the fabric counters"
    );
    assert_eq!(off.snapshot.at, on.snapshot.at);
    assert_eq!(off.snapshot.per_cell, on.snapshot.per_cell);

    // And the tracer did observe the run: ring slots for every fabric
    // transaction, coherence transitions, and one barrier-episode event
    // per processor per round.
    let counts = counts.lock().expect("sink");
    assert!(
        counts.count(TraceKind::RingSlot) > 0,
        "no ring events recorded"
    );
    assert!(
        counts.count(TraceKind::Coherence) > 0,
        "no coherence events recorded"
    );
    assert_eq!(
        counts.count(TraceKind::BarrierEpisode),
        (PROCS * ROUNDS) as u64,
        "one barrier event per processor per episode"
    );
    assert!(counts.total() > counts.count(TraceKind::BarrierEpisode));
}

#[test]
fn checking_sink_does_not_change_the_simulation() {
    let off = run_workload(None);
    let (tracer, sink) = Tracer::attach(ksr1_repro::verify::CheckingSink::default());
    let on = run_workload(Some(tracer));

    assert_eq!(
        off.duration_cycles, on.duration_cycles,
        "attaching the coherence checker changed the run's virtual time"
    );
    assert_eq!(off.perfmon, on.perfmon);
    assert_eq!(off.fabric, on.fabric);
    assert_eq!(off.snapshot.per_cell, on.snapshot.per_cell);

    // The checker observed the whole run and the real protocol is clean.
    let s = sink.lock().expect("sink");
    assert!(s.events_seen() > 0, "checker saw no events");
    assert!(s.is_clean(), "real protocol flagged: {:?}", s.violations());
}

#[test]
fn snapshot_deltas_attribute_phases() {
    let mut m = Machine::ksr1(7).expect("machine");
    let a = m.alloc(64 * 1024, 16384).expect("alloc");
    // Home the array on another cell so processor 0's reads must cross
    // the ring.
    m.warm(1, a, 64 * 1024);
    let before = m.perfmon_snapshot();
    m.run(vec![program(move |mut cpu| async move {
        for i in 0..256u64 {
            let _ = cpu.read_u64(a + (i * 128) % (64 * 1024)).await;
        }
    })])
    .expect("run");
    let after = m.perfmon_snapshot();
    let d = after.delta_since(&before);
    assert!(after.cycles_since(&before) > 0);
    assert!(
        d.total.ring_transactions > 0,
        "cold reads must cross the ring"
    );
    // The delta is attributable: re-deriving it from the raw snapshots
    // gives the same totals.
    assert_eq!(
        d.total.ring_transactions,
        after.total.ring_transactions - before.total.ring_transactions
    );
}

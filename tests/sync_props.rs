//! Randomized (but fully deterministic) tests of the synchronization
//! library: mutual exclusion, FCFS fairness, and reader/writer
//! correctness under seeded schedules generated with the in-tree
//! [`XorShift64`] generator.

use ksr1_repro::core::XorShift64;
use ksr1_repro::machine::{program, Machine};
use ksr1_repro::sync::{HwLock, LockMode, SwRwLock};

/// The hardware exclusive lock never admits two holders, for any mix of
/// hold times and inter-arrival skews.
#[test]
fn hw_lock_mutual_exclusion() {
    for case in 0..10u64 {
        let mut rng = XorShift64::new(0x10C4 ^ case);
        let seed = rng.next_u64();
        let procs = 2 + rng.next_index(4);
        let holds: Vec<u64> = (0..procs).map(|_| 1 + rng.next_below(499)).collect();
        let mut m = Machine::ksr1(seed).unwrap();
        let lock = HwLock::alloc(&mut m).unwrap();
        let in_cs = m.alloc_subpage(8).unwrap();
        m.run(
            holds
                .iter()
                .map(|&hold| {
                    program(move |mut cpu| async move {
                        for _ in 0..3 {
                            lock.acquire(&mut cpu).await;
                            let v = cpu.read_u64(in_cs).await;
                            assert_eq!(v, 0, "another holder inside the critical section");
                            cpu.write_u64(in_cs, 1).await;
                            cpu.compute(hold);
                            cpu.write_u64(in_cs, 0).await;
                            lock.release(&mut cpu).await;
                            cpu.compute(hold / 2 + 1);
                        }
                    })
                })
                .collect(),
        )
        .expect("run");
        assert_eq!(m.peek_u64(in_cs).unwrap(), 0, "case {case}");
    }
}

/// The software RW lock: writers exclusive, readers shared, nothing
/// lost, for any randomized mode schedule.
#[test]
fn rw_lock_invariants() {
    for case in 0..10u64 {
        let mut rng = XorShift64::new(0x5711 ^ (case << 4));
        let seed = rng.next_u64();
        let procs = 2 + rng.next_index(4);
        let schedule: Vec<Vec<bool>> = (0..procs)
            .map(|_| {
                (0..1 + rng.next_index(4))
                    .map(|_| rng.next_bool(0.5))
                    .collect()
            })
            .collect();
        let mut m = Machine::ksr1(seed).unwrap();
        let lock = SwRwLock::alloc(&mut m).unwrap();
        // state: word0 = active writers, word1 = active readers,
        // word2 = write count.
        let state = m.alloc_subpage(24).unwrap();
        let expected_writes: u64 = schedule
            .iter()
            .flat_map(|ops| ops.iter())
            .filter(|&&w| w)
            .count() as u64;
        m.run(
            schedule
                .iter()
                .cloned()
                .map(|ops| {
                    program(move |mut cpu| async move {
                        for &is_write in &ops {
                            if is_write {
                                let t = lock.acquire(&mut cpu, LockMode::Write).await;
                                let w = cpu.read_u64(state).await;
                                let r = cpu.read_u64(state + 8).await;
                                assert_eq!((w, r), (0, 0), "writer must be alone");
                                cpu.write_u64(state, 1).await;
                                cpu.compute(37);
                                let c = cpu.read_u64(state + 16).await;
                                cpu.write_u64(state + 16, c + 1).await;
                                cpu.write_u64(state, 0).await;
                                lock.release(&mut cpu, t).await;
                            } else {
                                let t = lock.acquire(&mut cpu, LockMode::Read).await;
                                let w = cpu.read_u64(state).await;
                                assert_eq!(w, 0, "reader admitted alongside a writer");
                                // Concurrent readers share the lock, so the
                                // instrumentation counter must itself be
                                // atomic (gsp-synthesised fetch-add).
                                cpu.fetch_add(state + 8, 1).await;
                                cpu.compute(23);
                                cpu.fetch_add(state + 8, u64::MAX).await;
                                lock.release(&mut cpu, t).await;
                            }
                        }
                    })
                })
                .collect(),
        )
        .expect("run");
        assert_eq!(m.peek_u64(state).unwrap(), 0, "case {case}");
        assert_eq!(m.peek_u64(state + 8).unwrap(), 0, "case {case}");
        assert_eq!(
            m.peek_u64(state + 16).unwrap(),
            expected_writes,
            "every write accounted (case {case})"
        );
    }
}

/// Deterministic FCFS check (needs controlled arrival times): three
/// writers arriving in a known order are served in it.
#[test]
fn sw_lock_is_fifo_for_writers() {
    let mut m = Machine::ksr1(5).unwrap();
    let lock = SwRwLock::alloc(&mut m).unwrap();
    let order = m.alloc_subpage(32).unwrap();
    let idx = m.alloc_subpage(8).unwrap();
    m.run(
        (0..4usize)
            .map(|p| {
                program(move |mut cpu| async move {
                    // Stagger arrivals well beyond any queueing noise.
                    cpu.compute(5_000 * (p as u64 + 1));
                    let t = lock.acquire(&mut cpu, LockMode::Write).await;
                    let i = cpu.read_u64(idx).await;
                    cpu.write_u64(order + i * 8, p as u64).await;
                    cpu.write_u64(idx, i + 1).await;
                    cpu.compute(20_000); // hold long enough that all queue
                    lock.release(&mut cpu, t).await;
                })
            })
            .collect(),
    )
    .expect("run");
    let served: Vec<u64> = (0..4).map(|i| m.peek_u64(order + i * 8).unwrap()).collect();
    assert_eq!(served, vec![0, 1, 2, 3], "strict FCFS violated");
}

/// The reader-side spin in the RW lock must not starve under a steady
/// stream of writers (FCFS queue guarantees progress).
#[test]
fn reader_not_starved_by_writer_stream() {
    let mut m = Machine::ksr1(6).unwrap();
    let lock = SwRwLock::alloc(&mut m).unwrap();
    let reader_done = m.alloc_subpage(8).unwrap();
    let r = m
        .run(
            (0..5usize)
                .map(|p| {
                    program(move |mut cpu| async move {
                        if p == 0 {
                            cpu.compute(2_000); // queue behind the first writer
                            let t = lock.acquire(&mut cpu, LockMode::Read).await;
                            cpu.write_u64(reader_done, cpu.now()).await;
                            lock.release(&mut cpu, t).await;
                        } else {
                            for _ in 0..6 {
                                let t = lock.acquire(&mut cpu, LockMode::Write).await;
                                cpu.compute(3_000);
                                lock.release(&mut cpu, t).await;
                            }
                        }
                    })
                })
                .collect(),
        )
        .expect("run");
    let done = m.peek_u64(reader_done).unwrap();
    assert!(done > 0, "reader never got in");
    assert!(
        done < r.finished_at,
        "reader finished before the writer stream drained (FCFS, not starvation)"
    );
}

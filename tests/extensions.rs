//! Tests of the §4 "wish list" extensions the paper's authors asked KSR
//! for: selective sub-cache bypass and local-cache → sub-cache prefetch.
//! These exist in the simulator precisely so the wish can be evaluated
//! (see the EXT experiment).

use ksr1_repro::machine::{program, Machine};

/// Streaming through a large array evicts a small hot set from the 2-way
/// sub-cache; marking the stream uncached protects the hot set.
#[test]
fn uncached_stream_protects_hot_set() {
    let run = |uncached: bool| {
        let mut m = Machine::ksr1(3).unwrap();
        // Hot set: 2 KB (one sub-cache block). Stream: 1 MB.
        let hot = m.alloc(2048, 2048).unwrap();
        let stream = m.alloc(1 << 20, 16384).unwrap();
        m.warm(0, hot, 2048);
        m.warm(0, stream, 1 << 20);
        if uncached {
            m.set_uncached(stream, 1 << 20);
        }
        let r = m
            .run(vec![program(move |mut cpu| async move {
                // Warm the hot set into the sub-cache.
                for w in 0..256u64 {
                    let _ = cpu.read_u64(hot + w * 8).await;
                }
                for i in 0..4_096u64 {
                    // One streaming access...
                    let _ = cpu.read_u64(stream + (i * 256) % (1 << 20)).await;
                    // ... then four hot accesses that want to stay at 2 cycles.
                    for w in 0..4u64 {
                        let _ = cpu.read_u64(hot + ((i * 32 + w * 8) % 2048)).await;
                    }
                }
            })])
            .expect("run");
        r.duration_cycles()
    };
    let cached = run(false);
    let uncached = run(true);
    assert!(
        uncached < cached,
        "bypassing the sub-cache for the stream must protect the hot set: \
         {cached} vs {uncached} cycles"
    );
}

/// The sub-cache prefetch turns the first touch of locally resident data
/// from an 18-cycle local-cache access into a 2-cycle sub-cache hit.
#[test]
fn subcache_prefetch_hides_the_18_cycles() {
    let mut m = Machine::ksr1(4).unwrap();
    let a = m.alloc(4096, 4096).unwrap();
    m.warm(0, a, 4096);
    let r = m
        .run(vec![program(move |mut cpu| async move {
            // Prefetch the first sub-page into the sub-cache, give it a beat,
            // then read: a sub-cache hit.
            cpu.prefetch_subcache(a).await;
            cpu.compute(50);
            let t0 = cpu.now();
            let _ = cpu.read_u64(a).await;
            let prefetched = cpu.now() - t0;
            assert_eq!(prefetched, 2, "prefetched read must be a sub-cache hit");
            // An unprefetched sub-page costs the local-cache latency.
            let t0 = cpu.now();
            let _ = cpu.read_u64(a + 2048).await;
            let cold = cpu.now() - t0;
            assert!(cold >= 18, "unprefetched read pays the local cache: {cold}");
        })])
        .expect("run");
    assert!(r.duration_cycles() > 0);
}

/// Sub-cache prefetch of remote (non-resident) data is a quiet no-op —
/// the instruction only moves data between the two local levels.
#[test]
fn subcache_prefetch_of_remote_data_is_noop() {
    let mut m = Machine::ksr1(5).unwrap();
    let a = m.alloc(256, 128).unwrap();
    m.warm(1, a, 256); // lives on another cell
    m.run(vec![program(move |mut cpu| async move {
        cpu.prefetch_subcache(a).await;
        cpu.compute(50);
        let t0 = cpu.now();
        let _ = cpu.read_u64(a).await;
        let latency = cpu.now() - t0;
        assert!(
            latency > 100,
            "the read must still go out on the ring: {latency}"
        );
    })])
    .expect("run");
}

/// Uncached ranges still get correct values and coherence.
#[test]
fn uncached_range_is_functionally_transparent() {
    let mut m = Machine::ksr1(6).unwrap();
    let a = m.alloc_subpage(64).unwrap();
    m.set_uncached(a, 64);
    m.run(vec![
        program(move |mut cpu| async move {
            cpu.write_u64(a, 11).await;
            cpu.write_u64(a + 8, 22).await;
        }),
        program(move |mut cpu| async move {
            cpu.spin_until(a + 8, |v| v == 22).await;
            let v = cpu.read_u64(a).await;
            assert_eq!(v, 11, "uncached data must stay coherent");
        }),
    ])
    .expect("run");
    assert_eq!(m.peek_u64(a).unwrap(), 11);
}

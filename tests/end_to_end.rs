//! Cross-crate integration tests: the full stack (ring → coherence →
//! machine → synchronization → kernels) driven through the public API of
//! the umbrella crate.

use ksr1_repro::machine::{program, Machine};
use ksr1_repro::nas::is::generate_keys;
use ksr1_repro::nas::{
    cg_sequential, ep_sequential, is_sequential, ranks_are_valid, sp_sequential, CgConfig, CgSetup,
    EpConfig, EpSetup, IsConfig, IsSetup, SpConfig, SpSetup,
};
use ksr1_repro::sync::{AnyBarrier, BarrierAlg, BarrierKind, Episode, LockMode, SwRwLock};

#[test]
fn all_four_machines_run_the_same_program() {
    for mut m in [
        Machine::ksr1(1).unwrap(),
        Machine::ksr2(1).unwrap(),
        Machine::symmetry(8, 1).unwrap(),
        Machine::butterfly(8, 1).unwrap(),
    ] {
        let a = m.alloc_subpage(8).unwrap();
        m.run(
            (0..4)
                .map(|_| {
                    program(move |mut cpu| async move {
                        for _ in 0..10 {
                            let old = cpu.fetch_add(a, 1).await;
                            let _ = old;
                            cpu.compute(50);
                        }
                    })
                })
                .collect(),
        )
        .expect("run");
        assert_eq!(m.peek_u64(a).unwrap(), 40);
    }
}

#[test]
fn kernels_verify_against_references_end_to_end() {
    // EP
    let ep_cfg = EpConfig {
        pairs: 2_000,
        ..EpConfig::default()
    };
    let ep_ref = ep_sequential(&ep_cfg);
    let mut m = Machine::ksr1(2).unwrap();
    let ep = EpSetup::new(&mut m, ep_cfg, 4).unwrap();
    m.run(ep.programs()).expect("run");
    assert_eq!(ep.result(&mut m).counts, ep_ref.counts);

    // CG
    let cg_cfg = CgConfig {
        n: 96,
        offdiag_per_row: 6,
        iterations: 3,
        seed: 5,
        poststore: true,
        uncache_matrix: false,
    };
    let cg_ref = cg_sequential(&cg_cfg);
    let mut m = Machine::ksr1_scaled(3, 64).unwrap();
    let cg = CgSetup::new(&mut m, cg_cfg, 3).unwrap();
    m.run(cg.programs()).expect("run");
    assert_eq!(
        cg.result(&mut m).x_checksum.to_bits(),
        cg_ref.x_checksum.to_bits()
    );

    // IS
    let is_cfg = IsConfig {
        keys: 1_500,
        max_key: 128,
        seed: 4,
        chunk: 64,
    };
    let keys = generate_keys(&is_cfg);
    let mut m = Machine::ksr1_scaled(4, 64).unwrap();
    let is = IsSetup::new(&mut m, is_cfg, 5).unwrap();
    m.run(is.programs()).expect("run");
    assert!(ranks_are_valid(&keys, &is.ranks(&mut m)));
    assert_eq!(is_sequential(&is_cfg).len(), is_cfg.keys);

    // SP
    let sp_cfg = SpConfig {
        n: 8,
        iterations: 1,
        ..SpConfig::default()
    };
    let sp_ref = sp_sequential(&sp_cfg);
    let mut m = Machine::ksr1(5).unwrap();
    let sp = SpSetup::new(&mut m, sp_cfg, 3).unwrap();
    m.run(sp.programs()).expect("run");
    let got = sp.solution(&mut m);
    assert!(got
        .iter()
        .zip(&sp_ref)
        .all(|(a, b)| a.to_bits() == b.to_bits()));
}

#[test]
fn whole_stack_is_deterministic() {
    let run = || {
        let mut m = Machine::ksr1(99).unwrap();
        let b = AnyBarrier::alloc(BarrierKind::TournamentFlag, &mut m, 6).unwrap();
        let lock = SwRwLock::alloc(&mut m).unwrap();
        let data = m.alloc_subpage(8).unwrap();
        let r = m
            .run(
                (0..6)
                    .map(|p| {
                        program(move |mut cpu| async move {
                            let mut ep = Episode::default();
                            for i in 0..5 {
                                let mode = if (p + i) % 2 == 0 {
                                    LockMode::Read
                                } else {
                                    LockMode::Write
                                };
                                let t = lock.acquire(&mut cpu, mode).await;
                                if mode == LockMode::Write {
                                    let v = cpu.read_u64(data).await;
                                    cpu.write_u64(data, v + 1).await;
                                } else {
                                    let _ = cpu.read_u64(data).await;
                                }
                                lock.release(&mut cpu, t).await;
                                b.wait(&mut cpu, &mut ep).await;
                            }
                        })
                    })
                    .collect(),
            )
            .expect("run");
        (
            r.duration_cycles(),
            r.proc_end.clone(),
            m.peek_u64(data).unwrap(),
        )
    };
    let a = run();
    let b = run();
    assert_eq!(
        a, b,
        "identical seeds must give identical virtual histories"
    );
    assert_eq!(
        a.2, 15,
        "6 procs x 5 rounds, write on (p+i) even: 15 writes"
    );
}

#[test]
fn perfmon_counters_are_consistent() {
    let mut m = Machine::ksr1(7).unwrap();
    let shared = m.alloc_subpage(1024).unwrap();
    m.run(
        (0..8)
            .map(|p| {
                program(move |mut cpu| async move {
                    for i in 0..64u64 {
                        let _ = cpu.read_u64(shared + (i % 128) * 8).await;
                        cpu.write_u64(shared + 512 + ((p as u64 * 64 + i) % 64) * 8, i)
                            .await;
                    }
                })
            })
            .collect(),
    )
    .expect("run");
    let pm = m.perfmon_total();
    assert_eq!(
        pm.total_accesses(),
        pm.subcache_hits + pm.subcache_misses,
        "hit/miss accounting must add up"
    );
    assert!(pm.subcache_misses >= pm.localcache_hits + pm.localcache_misses);
    let fabric = m.fabric_stats();
    // Cold first-touch misses allocate locally without ring traffic, so
    // fabric packets track ring transactions (not raw misses); cross-ring
    // transactions may book several packets each.
    assert!(
        fabric.packets >= pm.ring_transactions,
        "fabric accounting must cover transactions"
    );
    assert!(
        pm.ring_transactions > 0,
        "shared traffic must have used the ring"
    );
}

#[test]
fn ksr2_is_faster_on_compute_but_not_on_ring() {
    // Same program: heavy compute (clock-bound) vs heavy remote traffic
    // (ring-bound, identical absolute ring speed on the two machines).
    let compute_seconds = |mut m: Machine| {
        let r = m
            .run(vec![program(
                |mut cpu| async move { cpu.compute(1_000_000) },
            )])
            .expect("run");
        r.seconds()
    };
    let c1 = compute_seconds(Machine::ksr1(1).unwrap());
    let c2 = compute_seconds(Machine::ksr2(1).unwrap());
    assert!(
        (c1 / c2 - 2.0).abs() < 0.01,
        "KSR-2 computes 2x faster: {c1} vs {c2}"
    );

    let ring_seconds = |mut m: Machine| {
        let a = m.alloc(256 * 1024, 16384).unwrap();
        m.warm(1, a, 256 * 1024);
        let r = m
            .run(vec![program(move |mut cpu| async move {
                for i in 0..512u64 {
                    let _ = cpu.read_u64(a + i * 128).await;
                }
            })])
            .expect("run");
        r.seconds()
    };
    let r1 = ring_seconds(Machine::ksr1(1).unwrap());
    let r2 = ring_seconds(Machine::ksr2(1).unwrap());
    assert!(
        (r1 / r2 - 1.0).abs() < 0.25,
        "ring-bound work barely changes in absolute time: {r1} vs {r2}"
    );
}

//! Seeded-bug validation of the `ksr-verify` passes: the coherence
//! checker must catch deliberately broken protocol variants
//! ([`ProtocolFault`]), and the race detector must catch the
//! deliberately racy IS variant — while the correct protocol and the
//! properly locked kernels check clean.

use std::sync::{Arc, Mutex};

use ksr1_repro::core::trace::Tracer;
use ksr1_repro::machine::Machine;
use ksr1_repro::mem::{
    CacheTiming, MemGeometry, MemOp, MemorySystem, ProtocolFault, ProtocolOptions,
};
use ksr1_repro::nas::{IsConfig, IsSetup};
use ksr1_repro::net::Fabric;
use ksr1_repro::verify::{CheckingSink, CollectingSink, RaceDetector, RaceReport, Rule, Violation};

/// A four-cell memory system with an optional seeded protocol bug, its
/// event stream shadowed by a [`CheckingSink`].
fn checked_mem(fault: Option<ProtocolFault>) -> (MemorySystem, Arc<Mutex<CheckingSink>>) {
    let mut mem = MemorySystem::with_options(
        MemGeometry::scaled(64),
        CacheTiming::ksr1(),
        Fabric::ksr1_32().unwrap(),
        4,
        7,
        ProtocolOptions {
            fault,
            ..ProtocolOptions::default()
        },
    )
    .unwrap();
    let (tracer, sink) = Tracer::attach(CheckingSink::default());
    mem.set_tracer(tracer);
    (mem, sink)
}

fn violations(sink: &Arc<Mutex<CheckingSink>>) -> Vec<Violation> {
    sink.lock().unwrap().violations().to_vec()
}

#[test]
fn correct_protocol_checks_clean() {
    let (mut mem, sink) = checked_mem(None);
    let _ = mem.access(1, 128, MemOp::Write, 100).done_at();
    let _ = mem.access(0, 128, MemOp::Write, 5_000).done_at();
    let _ = mem.access(2, 128, MemOp::Read, 10_000).done_at();
    let _ = mem.access(3, 128, MemOp::Read, 15_000).done_at();
    let s = sink.lock().unwrap();
    assert!(s.is_clean(), "{:?}", s.violations());
    assert!(s.events_seen() > 0);
}

/// The mutant that skips invalidations lets two writable copies of one
/// sub-page coexist — the checker must report it, cycle-stamped.
#[test]
fn checker_catches_missed_invalidation() {
    let (mut mem, sink) = checked_mem(Some(ProtocolFault::MissedInvalidation));
    let _ = mem.access(1, 128, MemOp::Write, 100).done_at();
    // Cell 0 writes the same sub-page; the buggy fetch leaves cell 1's
    // Exclusive copy valid.
    let _ = mem.access(0, 128, MemOp::Write, 5_000).done_at();
    let vs = violations(&sink);
    let hit = vs
        .iter()
        .find(|v| v.rule == Rule::MultipleWriters)
        .unwrap_or_else(|| panic!("two Exclusive copies not flagged: {vs:?}"));
    assert!(hit.at > 0, "violation must carry the offending cycle");
    assert_eq!(hit.subpage, 1);
    assert!(!hit.window.is_empty(), "violation must replay its window");
}

/// The mutant that skips the owner demotion leaves a `Shared` copy
/// beside an `Exclusive` one.
#[test]
fn checker_catches_missed_demotion() {
    let (mut mem, sink) = checked_mem(Some(ProtocolFault::MissedDemotion));
    let _ = mem.access(0, 128, MemOp::Write, 100).done_at();
    // Cell 1 reads: the buggy fetch grants Shared without demoting the
    // Exclusive owner.
    let _ = mem.access(1, 128, MemOp::Read, 5_000).done_at();
    let vs = violations(&sink);
    let hit = vs
        .iter()
        .find(|v| v.rule == Rule::SharedWithWriter)
        .unwrap_or_else(|| panic!("Shared-beside-Exclusive not flagged: {vs:?}"));
    assert!(hit.at > 0);
    assert_eq!(hit.subpage, 1);
}

/// Run the IS kernel (locked or racy phase 6) under a collecting tracer
/// and hand the access stream to the race detector.
fn is_race_reports(racy: bool) -> Vec<RaceReport> {
    let procs = 4;
    let mut m = Machine::ksr1_scaled(11, 64).expect("machine");
    let (tracer, sink) = Tracer::attach(CollectingSink::new());
    m.set_tracer(tracer);
    let cfg = IsConfig {
        keys: 1 << 12,
        max_key: 256,
        seed: 424_242,
        chunk: 64,
    };
    let setup = IsSetup::new(&mut m, cfg, procs).expect("IS setup");
    m.run(if racy {
        setup.programs_racy_phase6()
    } else {
        setup.programs()
    })
    .expect("run");
    let events = sink.lock().unwrap().take();
    assert!(!events.is_empty(), "IS run must produce trace events");
    RaceDetector::new(procs).analyze(&events)
}

#[test]
fn locked_is_kernel_is_race_free() {
    let reports = is_race_reports(false);
    assert!(reports.is_empty(), "locked IS reported races: {reports:?}");
}

#[test]
fn racy_is_variant_is_caught() {
    let reports = is_race_reports(true);
    assert!(!reports.is_empty(), "the seeded phase-6 race was missed");
    // At least one report must be a genuine cross-processor conflict
    // involving a write, stamped with both access cycles.
    let hit = reports
        .iter()
        .find(|r| r.first.cell != r.second.cell && (r.first.write || r.second.write))
        .unwrap_or_else(|| panic!("no cross-cell write conflict in {reports:?}"));
    assert!(hit.second.at >= hit.first.at, "reports are cycle-ordered");
}

/// The whole-machine hookup: every coherence event of a real multi-cell
/// run flows through the checking sink, and the correct protocol is
/// clean end to end.
#[test]
fn full_is_run_checks_coherence_clean() {
    let mut m = Machine::ksr1_scaled(13, 64).expect("machine");
    let (tracer, sink) = Tracer::attach(CheckingSink::default());
    m.set_tracer(tracer);
    let cfg = IsConfig {
        keys: 1 << 12,
        max_key: 256,
        seed: 99,
        chunk: 64,
    };
    let setup = IsSetup::new(&mut m, cfg, 4).expect("IS setup");
    m.run(setup.programs()).expect("run");
    let s = sink.lock().unwrap();
    assert!(s.is_clean(), "{:?}", s.violations());
    assert!(
        s.events_seen() > 1_000,
        "checker saw {} events",
        s.events_seen()
    );
}

/// Concurrent machine construction with scoped observers: two threads
/// each install their own checking observer and build their own
/// machine; each scope must capture exactly its own machine's trace
/// (the old process-global observer hook would have cross-wired them).
#[test]
fn concurrent_machines_get_their_own_checking_sinks() {
    use ksr1_repro::machine::{program, MachineObserver, ObserverScope};

    let worker = |seed: u64| {
        let sinks: Arc<Mutex<Vec<Arc<Mutex<CheckingSink>>>>> = Arc::default();
        let registry = Arc::clone(&sinks);
        let observer: Arc<MachineObserver> = Arc::new(move |m: &mut Machine| {
            let (tracer, sink) = Tracer::attach(CheckingSink::default());
            m.set_tracer(tracer);
            registry.lock().unwrap().push(sink);
        });
        let _scope = ObserverScope::install(observer);
        let mut m = Machine::ksr1(seed).expect("machine");
        let a = m.alloc(1024, 128).expect("alloc");
        m.run(vec![program(move |mut cpu| async move {
            cpu.write_u64(a, seed).await;
            let _ = cpu.read_u64(a).await;
        })])
        .expect("run");
        let sinks = sinks.lock().unwrap();
        assert_eq!(
            sinks.len(),
            1,
            "a thread's scope must see exactly the machines built on that thread"
        );
        let s = sinks[0].lock().unwrap();
        assert!(s.is_clean(), "{:?}", s.violations());
        s.events_seen()
    };

    std::thread::scope(|sc| {
        let h1 = sc.spawn(|| worker(11));
        let h2 = sc.spawn(|| worker(12));
        assert!(h1.join().unwrap() > 0, "thread 1 saw no coherence events");
        assert!(h2.join().unwrap() > 0, "thread 2 saw no coherence events");
    });
}
